//! # eva-service — client/server deployment of compiled EVA programs
//!
//! The EVA paper's whole point is a deployment split (Section 2): a client
//! that encodes and encrypts with keys it never shares, and an untrusted
//! server that executes the compiled circuit over ciphertexts. This crate
//! implements that split over TCP:
//!
//! * [`EvaServer`] loads a [`CompiledProgram`](eva_core::CompiledProgram)
//!   (in memory or from a `.evaprog` bundle), publishes a
//!   [`ProgramManifest`] to connecting clients, accepts their evaluation
//!   keys and runs evaluation rounds with the shared parallel executor —
//!   concurrently across sessions, each isolated with its own client's keys.
//! * [`EvaClient`] validates the published parameters with
//!   `CkksParameters::from_primes`, generates **all** keys locally, uploads
//!   only the evaluation keys (relinearization + exactly the Galois keys the
//!   circuit's rotation steps need), then encrypts inputs and decrypts
//!   outputs for any number of evaluation rounds.
//!
//! Two transport optimizations keep the wire lean:
//!
//! * **Seeded ciphertexts** — fresh encrypted inputs travel as `EVAD`
//!   objects (a 32-byte expansion seed plus one polynomial instead of two),
//!   roughly halving upload bytes per ciphertext.
//! * **Session resumption** — the server caches evaluation keys by content
//!   fingerprint; a client reconnecting with the same keys
//!   ([`EvaClient::connect_resuming`]) skips the multi-megabyte key upload
//!   (and the key generation behind it) entirely.
//!
//! Wire formats come from `eva-wire`; secret keys have no wire
//! representation at all, and the public *encryption* key also stays on the
//! client — the server receives nothing it could encrypt (let alone
//! decrypt) with. The full protocol specification lives in
//! [`docs/PROTOCOL.md`](https://github.com/eva-reproduction/eva/blob/main/docs/PROTOCOL.md).
//!
//! # Example
//!
//! ```no_run
//! use std::collections::HashMap;
//! use std::net::TcpListener;
//! use eva_core::{compile, CompilerOptions, Opcode, Program};
//! use eva_service::{EvaClient, EvaServer};
//!
//! // Compile x^2 and serve it on a localhost socket.
//! let mut p = Program::new("square", 8);
//! let x = p.input_cipher("x", 30);
//! let sq = p.instruction(Opcode::Multiply, &[x, x]);
//! p.output("out", sq, 30);
//! let compiled = compile(&p, &CompilerOptions::default()).unwrap();
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let server = EvaServer::new(compiled).unwrap();
//! let handle = std::thread::spawn(move || server.serve_sessions(&listener, 1));
//!
//! let mut client = EvaClient::connect(addr, None).unwrap();
//! let inputs: HashMap<String, Vec<f64>> =
//!     [("x".to_string(), vec![1.5; 8])].into_iter().collect();
//! let outputs = client.evaluate(&inputs).unwrap();
//! assert!((outputs["out"][0] - 2.25).abs() < 1e-3);
//! client.finish().unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;
pub mod client;
pub mod error;
pub mod keystore;
pub mod limits;
pub mod protocol;
mod reactor;
pub mod record;
pub mod retry;
mod sched;
pub mod server;
mod session;

pub use chaos::{ChaosStream, Fault};
pub use client::{EvaClient, SessionTicket};
pub use error::ServiceError;
pub use eva_wire::KeyFingerprint;
pub use keystore::DiskKeyStore;
pub use limits::{ClientConfig, DeadlineStream, ServerConfig};
pub use protocol::{
    bytes_with_tag, frame_index, FrameSummary, InputSpec, InputValue, Message, OutputSpec,
    OutputValue, ProgramManifest, ValuePayload, MAX_FRAME_BYTES, PROTOCOL_VERSION, TAG_BYE,
    TAG_ERROR, TAG_EVAL_KEYS, TAG_HELLO, TAG_INPUTS, TAG_MANIFEST, TAG_OUTPUTS,
};
pub use record::{contains_bytes, RecordingStream};
pub use retry::{ReliableClient, RetryPolicy, RetryStats};
pub use server::{
    EvaServer, ServerStats, SessionReport, DEFAULT_KEY_CACHE_BUDGET_BYTES,
    DEFAULT_KEY_CACHE_CAPACITY,
};
