//! Resource limits and deadlines for the service layer.
//!
//! The session socket is unauthenticated, so every resource a peer can make
//! the server spend — worker-thread time, buffered bytes, concurrent
//! sessions — must be bounded *before* any trust is established. This module
//! holds the knobs ([`ServerConfig`], [`ClientConfig`]) and the transport
//! wrapper that enforces the time bound ([`DeadlineStream`]).
//!
//! The read deadline is a **wall-clock budget per incoming message**, not a
//! per-`read(2)` timeout: a slowloris peer that trickles one byte per
//! almost-timeout would defeat a per-read timeout forever, but against a
//! per-message budget the total stall is bounded no matter how the bytes are
//! paced. The clock arms at the first read after the budget was last
//! re-armed, and re-arms on every write (the server answered) **and on
//! every completed frame** — [`DeadlineStream`] tracks the wire format's
//! length-prefixed framing itself, so back-to-back messages (evaluation
//! keys immediately followed by inputs) each get their own budget while a
//! peer that never completes a frame in time is still cut off.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::error::ServiceError;
use crate::protocol::{TAG_EVAL_KEYS, TAG_INPUTS};

/// Resource limits an [`EvaServer`](crate::EvaServer) applies to every
/// session (set with [`EvaServer::with_config`](crate::EvaServer::with_config)).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Wall-clock budget for receiving one complete message (tag, length and
    /// payload), measured from the first read after the server's last write
    /// or the previous completed frame — each message gets its own budget.
    /// A peer that stalls mid-frame — or trickles bytes slower than this —
    /// is disconnected with a `deadline:` protocol error. Also bounds how
    /// long an idle session may sit between evaluation rounds. `None`
    /// disables the deadline (not recommended on untrusted networks).
    pub read_deadline: Option<Duration>,
    /// Socket write timeout: a peer that stops draining its receive window
    /// cannot pin a worker thread in `write(2)` forever.
    pub write_timeout: Option<Duration>,
    /// Maximum concurrently served sessions. Further connections are
    /// answered with a polite `busy:` protocol `Error` frame and closed —
    /// backpressure a retrying client turns into backoff, instead of an
    /// unbounded thread pile-up.
    pub max_sessions: usize,
    /// Per-session byte quota for `EvalKeys` frames, checked against the
    /// **announced** frame length before any payload byte is buffered.
    pub eval_key_quota: u64,
    /// Per-session cumulative byte quota for `Inputs` frames, checked the
    /// same way.
    pub input_quota: u64,
    /// Evaluation worker threads the reactor's shared scheduler runs
    /// (cross-session: every queued evaluation competes for this pool).
    /// `0` sizes the pool automatically from the machine's available
    /// parallelism. Ignored by the legacy blocking transport, which
    /// evaluates inline on its per-session threads.
    pub eval_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_deadline: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_sessions: 64,
            // Evaluation keys are tens of megabytes (≈48 MB for 16×16
            // Sobel); one upload per session plus headroom.
            eval_key_quota: 256 * 1024 * 1024,
            // Many evaluation rounds of seeded inputs fit comfortably; a
            // peer needing more opens a new session.
            input_quota: 1 << 30,
            eval_workers: 0,
        }
    }
}

/// Socket tuning for [`EvaClient::connect_with`](crate::EvaClient::connect_with):
/// a connect deadline plus per-read/per-write socket timeouts, so a stalled
/// or black-holed server cannot hang the client forever.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection (per resolved address).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout (each `read(2)`; a stalled server trips it).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Wraps a server-side [`TcpStream`] and enforces the per-message read
/// deadline of [`ServerConfig::read_deadline`] (see the module docs for why
/// this is a wall-clock budget rather than a per-read timeout). Reads past
/// the budget fail with [`io::ErrorKind::TimedOut`] and a `deadline:`
/// message, which the session layer forwards to the peer as a protocol
/// `Error` frame before closing.
#[derive(Debug)]
pub struct DeadlineStream {
    inner: TcpStream,
    deadline: Option<Duration>,
    /// Arms at the first read after a write or a completed frame; cleared by
    /// writes and by [`DeadlineStream::advance_frames`] at frame boundaries.
    message_start: Option<Instant>,
    /// Read-side frame tracker: header bytes of the current frame seen so
    /// far (a frame is 1 tag byte + 8 little-endian length bytes + payload).
    header: [u8; 9],
    header_filled: usize,
    /// Payload bytes of the current frame still owed by the peer.
    payload_remaining: u64,
}

impl DeadlineStream {
    /// Wraps a stream with an optional per-message read budget.
    pub fn new(inner: TcpStream, deadline: Option<Duration>) -> Self {
        Self {
            inner,
            deadline,
            message_start: None,
            header: [0; 9],
            header_filled: 0,
            payload_remaining: 0,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }

    /// Feeds received bytes through the frame tracker; every completed frame
    /// re-arms the read budget, so consecutive messages (a multi-megabyte
    /// key upload followed immediately by inputs) are each measured against
    /// their own deadline instead of sharing one.
    fn advance_frames(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            if self.header_filled < self.header.len() {
                let take = bytes.len().min(self.header.len() - self.header_filled);
                self.header[self.header_filled..self.header_filled + take]
                    .copy_from_slice(&bytes[..take]);
                self.header_filled += take;
                bytes = &bytes[take..];
                if self.header_filled < self.header.len() {
                    return; // still mid-header
                }
                self.payload_remaining =
                    u64::from_le_bytes(self.header[1..9].try_into().expect("8 length bytes"));
            }
            let take = (bytes.len() as u64).min(self.payload_remaining) as usize;
            self.payload_remaining -= take as u64;
            bytes = &bytes[take..];
            if self.payload_remaining > 0 {
                return; // still mid-payload
            }
            // Frame complete: the next message gets a fresh budget.
            self.header_filled = 0;
            self.message_start = None;
        }
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(deadline) = self.deadline else {
            return self.inner.read(buf);
        };
        let start = *self.message_start.get_or_insert_with(Instant::now);
        let timeout = |deadline: Duration| {
            io::Error::new(
                io::ErrorKind::TimedOut,
                format!("deadline: no complete message within {deadline:?}"),
            )
        };
        let remaining = deadline.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(timeout(deadline));
        }
        // The socket timeout covers this read; the budget shrinks with every
        // byte received, so pacing tricks cannot extend the total stall.
        self.inner.set_read_timeout(Some(remaining))?;
        match self.inner.read(buf) {
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(timeout(deadline))
            }
            Ok(n) => {
                self.advance_frames(&buf[..n]);
                Ok(n)
            }
            other => other,
        }
    }
}

impl Write for DeadlineStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // The server answered: re-arm the budget for the peer's next message.
        self.message_start = None;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Per-session byte budgets for the unauthenticated sinks (`EvalKeys` and
/// `Inputs` frames), decremented by the **announced** length of each frame
/// before its payload is read — an over-quota frame is refused while still
/// costing the server only its 9-byte header.
#[derive(Debug)]
pub(crate) struct SessionQuotas {
    eval_key: u64,
    input: u64,
}

impl SessionQuotas {
    pub(crate) fn new(config: &ServerConfig) -> Self {
        Self {
            eval_key: config.eval_key_quota,
            input: config.input_quota,
        }
    }

    /// Admits or refuses one announced frame. Non-sink tags are always
    /// admitted (they are tiny and bounded by `MAX_FRAME_BYTES` anyway).
    pub(crate) fn admit(&mut self, tag: u8, len: u64) -> Result<(), ServiceError> {
        let (budget, what) = match tag {
            TAG_EVAL_KEYS => (&mut self.eval_key, "evaluation-key"),
            TAG_INPUTS => (&mut self.input, "input"),
            _ => return Ok(()),
        };
        if len > *budget {
            return Err(ServiceError::Protocol(format!(
                "quota: {what} frame of {len} bytes exceeds the session's remaining \
                 {budget}-byte {what} quota"
            )));
        }
        *budget -= len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_track_the_announced_lengths_per_tag() {
        let config = ServerConfig {
            eval_key_quota: 100,
            input_quota: 50,
            ..ServerConfig::default()
        };
        let mut quotas = SessionQuotas::new(&config);
        quotas.admit(TAG_EVAL_KEYS, 60).unwrap();
        quotas.admit(TAG_INPUTS, 20).unwrap();
        quotas.admit(TAG_INPUTS, 30).unwrap();
        // Budgets are cumulative per tag.
        let err = quotas.admit(TAG_INPUTS, 1).unwrap_err();
        assert!(err.to_string().contains("quota:"), "{err}");
        let err = quotas.admit(TAG_EVAL_KEYS, 41).unwrap_err();
        assert!(err.to_string().contains("evaluation-key"), "{err}");
        // Other tags are never counted.
        quotas.admit(crate::protocol::TAG_BYE, u64::MAX).unwrap();
    }

    #[test]
    fn deadline_stream_disconnects_a_stalled_peer() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The peer connects and sends two bytes, then stalls forever.
        let peer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&[1, 2]).unwrap();
            stream
        });
        let (stream, _) = listener.accept().unwrap();
        let mut stream = DeadlineStream::new(stream, Some(Duration::from_millis(200)));
        let started = Instant::now();
        let mut buf = [0u8; 8];
        let n = stream.read(&mut buf).unwrap();
        assert!(n >= 1);
        // Drain whatever arrived, then the stall must trip the deadline —
        // and the budget spans *all* reads of the message, so the second
        // read fails within the original 200 ms, not another 200 ms.
        let mut total = n;
        let err = loop {
            match stream.read(&mut buf) {
                Ok(n) => total += n,
                Err(err) => break err,
            }
        };
        assert_eq!(total, 2);
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("deadline:"), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline did not bound the stall"
        );
        drop(peer.join().unwrap());
    }

    #[test]
    fn completed_frames_rearm_the_deadline() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The peer sends three complete frames with inter-frame pauses that
        // sum to more than the deadline — legal, because each frame arrives
        // within its own budget — then stalls mid-frame, which is not.
        let peer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut frame = vec![9u8]; // tag
            frame.extend_from_slice(&2u64.to_le_bytes());
            frame.extend_from_slice(&[1, 2]);
            for _ in 0..3 {
                stream.write_all(&frame).unwrap();
                std::thread::sleep(Duration::from_millis(150));
            }
            stream.write_all(&frame[..4]).unwrap(); // mid-header, then silence
            stream
        });
        let (stream, _) = listener.accept().unwrap();
        let mut stream = DeadlineStream::new(stream, Some(Duration::from_millis(250)));
        let started = Instant::now();
        let mut buf = [0u8; 11];
        for _ in 0..3 {
            stream.read_exact(&mut buf).unwrap();
        }
        assert!(
            started.elapsed() >= Duration::from_millis(300),
            "the three frames must span more than one deadline"
        );
        let err = stream.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("deadline:"), "{err}");
        drop(peer.join().unwrap());
    }

    #[test]
    fn writes_rearm_the_deadline() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&[7]).unwrap();
            // Wait for the reply, then send the next "message" after a pause
            // longer than half the deadline: only a re-armed clock admits it.
            let mut buf = [0u8; 1];
            stream.read_exact(&mut buf).unwrap();
            std::thread::sleep(Duration::from_millis(150));
            stream.write_all(&[8]).unwrap();
            stream
        });
        let (stream, _) = listener.accept().unwrap();
        let mut stream = DeadlineStream::new(stream, Some(Duration::from_millis(250)));
        let mut buf = [0u8; 1];
        stream.read_exact(&mut buf).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        stream.write_all(&[0]).unwrap();
        // 300 ms have passed since the first read, but the write re-armed
        // the budget, so the second message still arrives in time.
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], 8);
        drop(peer.join().unwrap());
    }
}
