//! The session protocol spoken between [`EvaClient`](crate::EvaClient) and
//! [`EvaServer`](crate::EvaServer).
//!
//! Every message is one length-prefixed frame on the socket:
//!
//! ```text
//! tag (u8) · payload_len (u64, little-endian) · payload
//! ```
//!
//! and payloads are built from the `eva-wire` framing layer, so the same
//! reader/writer, envelopes and error type cover the whole stack. A session
//! proceeds:
//!
//! ```text
//! client                                server
//!   | -- Hello { protocol } ------------> |
//!   | <------------ Manifest (EVAM) ----- |   program name, shape, primes,
//!   |                                     |   rotation steps, input scales
//!   | -- EvalKeys { relin?, galois } ---> |   public *evaluation* keys only
//!   | -- Inputs [name -> ct | values] --> |
//!   | <-- Outputs [name -> ct | values] - |   (repeat Inputs/Outputs freely)
//!   | -- Bye ---------------------------> |
//! ```
//!
//! Secret keys never have a wire representation (see `eva-wire`), and the
//! public *encryption* key stays client-side too: the server receives only
//! the evaluation keys (relinearization + Galois) it needs to run the
//! circuit.

use std::collections::HashMap;
use std::io::{Read, Write};

use eva_backend::{needs_relinearization, NodeValue};
use eva_ckks::{Ciphertext, GaloisKeys, RelinearizationKey};
use eva_core::{CompiledProgram, NodeKind, ValueType};
use eva_wire::{Reader, WireError, WireObject, Writer};

use crate::error::ServiceError;

/// Version of the session protocol (checked in the Hello message).
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame's payload (1 GiB), so a corrupt or hostile
/// length prefix cannot demand an unbounded buffer. Frames are additionally
/// read incrementally, so even below the cap a peer must actually send the
/// bytes it announced before they are held in memory.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// One program input as described by the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Input name (the program's input node name).
    pub name: String,
    /// Whether the input is encrypted (`Cipher`) or travels as plain values.
    pub cipher: bool,
    /// Exact `log2` scale the client must encode this input at
    /// (bit-for-bit; the server validates equality).
    pub scale_log2: f64,
}

/// One program output as described by the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSpec {
    /// Output name.
    pub name: String,
    /// Whether the output comes back encrypted.
    pub cipher: bool,
}

/// Everything a client needs to participate in a session: the program's
/// shape, the exact encryption parameters (actual primes, so client and
/// server scales agree bit-for-bit), the evaluation keys to generate and the
/// input/output interface.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramManifest {
    /// Program name.
    pub name: String,
    /// Program vector size (slots used per ciphertext).
    pub vec_size: usize,
    /// Ring degree `N`.
    pub degree: usize,
    /// Actual data primes, chain order (rescale consumes from the back).
    pub data_primes: Vec<u64>,
    /// Actual special key-switching prime.
    pub special_prime: u64,
    /// Whether the parameters satisfy the 128-bit security bound.
    pub secure: bool,
    /// Whether the program relinearizes (client must upload a relin key).
    pub needs_relin: bool,
    /// Rotation steps needing Galois keys — exactly the program's ROTATE
    /// step set, so the client uploads only the keys the circuit needs.
    pub rotation_steps: Vec<i64>,
    /// Live program inputs, in node order.
    pub inputs: Vec<InputSpec>,
    /// Program outputs, in declaration order.
    pub outputs: Vec<OutputSpec>,
}

impl ProgramManifest {
    /// Builds the manifest a server publishes for a compiled program. Only
    /// live (output-reachable) inputs are listed; dead inputs need no value.
    pub fn from_compiled(compiled: &CompiledProgram) -> Self {
        let program = &compiled.program;
        let live = program.live_mask();
        let inputs = program
            .nodes()
            .iter()
            .enumerate()
            .filter(|&(id, _)| live[id])
            .filter_map(|(_, node)| match &node.kind {
                NodeKind::Input { name } => Some(InputSpec {
                    name: name.clone(),
                    cipher: node.ty == ValueType::Cipher,
                    scale_log2: node.scale_log2,
                }),
                _ => None,
            })
            .collect();
        let outputs = program
            .outputs()
            .iter()
            .map(|output| OutputSpec {
                name: output.name.clone(),
                cipher: program.node(output.node).ty == ValueType::Cipher,
            })
            .collect();
        Self {
            name: program.name().to_string(),
            vec_size: program.vec_size(),
            degree: compiled.parameters.degree,
            data_primes: compiled.parameters.data_primes.clone(),
            special_prime: compiled.parameters.special_prime,
            secure: compiled.parameters.secure,
            needs_relin: needs_relinearization(compiled),
            rotation_steps: compiled.rotation_steps.clone(),
            inputs,
            outputs,
        }
    }
}

impl WireObject for ProgramManifest {
    const MAGIC: [u8; 4] = *b"EVAM";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        w.str(&self.name);
        w.u64(self.vec_size as u64);
        w.u64(self.degree as u64);
        w.u64_slice(&self.data_primes);
        w.u64(self.special_prime);
        w.bool(self.secure);
        w.bool(self.needs_relin);
        w.u32(self.rotation_steps.len() as u32);
        for &step in &self.rotation_steps {
            w.i64(step);
        }
        w.u32(self.inputs.len() as u32);
        for input in &self.inputs {
            w.str(&input.name);
            w.bool(input.cipher);
            w.f64(input.scale_log2);
        }
        w.u32(self.outputs.len() as u32);
        for output in &self.outputs {
            w.str(&output.name);
            w.bool(output.cipher);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.str()?;
        let vec_size = r.u64()? as usize;
        if vec_size == 0 || !vec_size.is_power_of_two() {
            return Err(WireError::Invalid(format!(
                "vector size {vec_size} is not a power of two"
            )));
        }
        let degree = r.u64()? as usize;
        if degree < 2 || !degree.is_power_of_two() || degree > eva_wire::MAX_WIRE_DEGREE {
            return Err(WireError::Invalid(format!(
                "ring degree {degree} out of range"
            )));
        }
        let data_primes = r.u64_slice()?;
        let special_prime = r.u64()?;
        let secure = r.bool()?;
        let needs_relin = r.bool()?;
        let step_count = r.u32()? as usize;
        let mut rotation_steps = Vec::with_capacity(step_count.min(1 << 16));
        for _ in 0..step_count {
            rotation_steps.push(r.i64()?);
        }
        let input_count = r.u32()? as usize;
        let mut inputs = Vec::with_capacity(input_count.min(1 << 16));
        for _ in 0..input_count {
            let name = r.str()?;
            let cipher = r.bool()?;
            let scale_log2 = r.f64()?;
            if !scale_log2.is_finite() {
                return Err(WireError::Invalid(format!(
                    "input {name:?} has a non-finite scale"
                )));
            }
            inputs.push(InputSpec {
                name,
                cipher,
                scale_log2,
            });
        }
        let output_count = r.u32()? as usize;
        let mut outputs = Vec::with_capacity(output_count.min(1 << 16));
        for _ in 0..output_count {
            outputs.push(OutputSpec {
                name: r.str()?,
                cipher: r.bool()?,
            });
        }
        Ok(Self {
            name,
            vec_size,
            degree,
            data_primes,
            special_prime,
            secure,
            needs_relin,
            rotation_steps,
            inputs,
            outputs,
        })
    }
}

/// A named value crossing the wire in either direction: `Cipher`-typed
/// program values travel as ciphertexts, plaintext values as raw reals (the
/// server encodes plaintext operands on demand, like the in-process
/// executor). Inputs (client → server) and outputs (server → client) share
/// this layout and codec.
#[derive(Debug, Clone)]
pub enum ValuePayload {
    /// An encrypted value.
    Cipher(Box<Ciphertext>),
    /// A plaintext vector.
    Plain(Vec<f64>),
}

/// One named input travelling client → server.
pub type InputValue = ValuePayload;

/// One named output travelling server → client.
pub type OutputValue = ValuePayload;

impl From<NodeValue> for ValuePayload {
    fn from(value: NodeValue) -> Self {
        match value {
            NodeValue::Cipher(ct) => ValuePayload::Cipher(Box::new(ct)),
            NodeValue::Plain(v) => ValuePayload::Plain(v),
        }
    }
}

fn encode_named_values(w: &mut Writer, values: &[(String, ValuePayload)]) {
    w.u32(values.len() as u32);
    for (name, value) in values {
        w.str(name);
        match value {
            ValuePayload::Cipher(ct) => {
                w.u8(0);
                ct.encode(w);
            }
            ValuePayload::Plain(values) => {
                w.u8(1);
                w.u64(values.len() as u64);
                for &v in values {
                    w.f64(v);
                }
            }
        }
    }
}

fn decode_named_values(r: &mut Reader<'_>) -> Result<Vec<(String, ValuePayload)>, WireError> {
    let count = r.u32()? as usize;
    let mut values = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let name = r.str()?;
        let value = match r.u8()? {
            0 => ValuePayload::Cipher(Box::new(Ciphertext::decode(r)?)),
            1 => ValuePayload::Plain(decode_f64_values(r)?),
            other => return Err(WireError::Invalid(format!("unknown value tag {other}"))),
        };
        values.push((name, value));
    }
    Ok(values)
}

/// A protocol message.
#[derive(Debug)]
pub enum Message {
    /// Client → server session opener.
    Hello {
        /// The client's protocol version.
        protocol: u32,
    },
    /// Server → client program description.
    Manifest(Box<ProgramManifest>),
    /// Client → server evaluation-key upload.
    EvalKeys {
        /// Relinearization key, iff the manifest demands one.
        relin: Option<Box<RelinearizationKey>>,
        /// Galois keys for the manifest's rotation steps.
        galois: Box<GaloisKeys>,
    },
    /// Client → server named inputs for one evaluation.
    Inputs(Vec<(String, InputValue)>),
    /// Server → client named outputs of one evaluation.
    Outputs(Vec<(String, OutputValue)>),
    /// Either direction: the current request failed.
    Error(String),
    /// Client → server: end of session.
    Bye,
}

const TAG_HELLO: u8 = 1;
const TAG_MANIFEST: u8 = 2;
const TAG_EVAL_KEYS: u8 = 3;
const TAG_INPUTS: u8 = 4;
const TAG_OUTPUTS: u8 = 5;
const TAG_ERROR: u8 = 6;
const TAG_BYE: u8 = 7;

fn encode_payload(message: &Message) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    let tag = match message {
        Message::Hello { protocol } => {
            w.u32(*protocol);
            TAG_HELLO
        }
        Message::Manifest(manifest) => {
            manifest.encode(&mut w);
            TAG_MANIFEST
        }
        Message::EvalKeys { relin, galois } => {
            match relin {
                Some(key) => {
                    w.bool(true);
                    key.encode(&mut w);
                }
                None => w.bool(false),
            }
            galois.encode(&mut w);
            TAG_EVAL_KEYS
        }
        Message::Inputs(inputs) => {
            encode_named_values(&mut w, inputs);
            TAG_INPUTS
        }
        Message::Outputs(outputs) => {
            encode_named_values(&mut w, outputs);
            TAG_OUTPUTS
        }
        Message::Error(msg) => {
            w.str(msg);
            TAG_ERROR
        }
        Message::Bye => TAG_BYE,
    };
    (tag, w.into_bytes())
}

fn decode_f64_values(r: &mut Reader<'_>) -> Result<Vec<f64>, WireError> {
    let count = r.u64()? as usize;
    if count.checked_mul(8).is_none_or(|b| b > r.remaining()) {
        return Err(WireError::UnexpectedEnd);
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.f64()?);
    }
    Ok(values)
}

fn decode_payload(tag: u8, payload: &[u8]) -> Result<Message, ServiceError> {
    let mut r = Reader::new(payload);
    let message = match tag {
        TAG_HELLO => Message::Hello { protocol: r.u32()? },
        TAG_MANIFEST => Message::Manifest(Box::new(ProgramManifest::decode(&mut r)?)),
        TAG_EVAL_KEYS => {
            let relin = if r.bool()? {
                Some(Box::new(RelinearizationKey::decode(&mut r)?))
            } else {
                None
            };
            let galois = Box::new(GaloisKeys::decode(&mut r)?);
            Message::EvalKeys { relin, galois }
        }
        TAG_INPUTS => Message::Inputs(decode_named_values(&mut r)?),
        TAG_OUTPUTS => Message::Outputs(decode_named_values(&mut r)?),
        TAG_ERROR => Message::Error(r.str()?),
        TAG_BYE => Message::Bye,
        other => {
            return Err(ServiceError::Protocol(format!(
                "unknown message tag {other}"
            )))
        }
    };
    r.expect_end().map_err(ServiceError::Wire)?;
    Ok(message)
}

/// Writes one framed message and flushes the stream.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] on socket failure.
pub fn write_message<S: Write>(stream: &mut S, message: &Message) -> Result<(), ServiceError> {
    let (tag, payload) = encode_payload(message);
    stream.write_all(&[tag])?;
    stream.write_all(&(payload.len() as u64).to_le_bytes())?;
    stream.write_all(&payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one framed message. Returns `Ok(None)` on a clean end-of-stream
/// (the peer closed between messages); truncation inside a frame is an
/// error.
///
/// # Errors
///
/// Returns [`ServiceError`] on socket failure, oversized frames or
/// undecodable payloads.
pub fn read_message<S: Read>(stream: &mut S) -> Result<Option<Message>, ServiceError> {
    let mut tag = [0u8; 1];
    // A bare `read` (unlike `read_exact`) surfaces EINTR; retry it so a
    // signal delivered while idle between frames does not kill the session.
    loop {
        match stream.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err.into()),
        }
    }
    let mut len_bytes = [0u8; 8];
    stream.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(ServiceError::Protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    // Read through `take(..).read_to_end`, which grows the buffer as bytes
    // actually arrive: a peer lying about the length must send that many
    // bytes to make us hold them, so a 9-byte connection cannot reserve
    // gigabytes up front.
    let mut payload = Vec::new();
    let read = std::io::Read::take(&mut *stream, len).read_to_end(&mut payload)?;
    if (read as u64) < len {
        return Err(ServiceError::Disconnected);
    }
    decode_payload(tag[0], &payload).map(Some)
}

/// Reads one message, treating end-of-stream as a protocol violation (used
/// where the protocol requires a next message).
///
/// # Errors
///
/// Returns [`ServiceError::Disconnected`] on end-of-stream, otherwise as
/// [`read_message`].
pub fn expect_message<S: Read>(stream: &mut S) -> Result<Message, ServiceError> {
    read_message(stream)?.ok_or(ServiceError::Disconnected)
}

/// Named encrypted inputs, as [`EvaluationContext::bind_inputs`] expects.
///
/// [`EvaluationContext::bind_inputs`]: eva_backend::EvaluationContext::bind_inputs
pub type CipherInputs = HashMap<String, Ciphertext>;

/// Named plaintext inputs, as [`EvaluationContext::bind_inputs`] expects.
///
/// [`EvaluationContext::bind_inputs`]: eva_backend::EvaluationContext::bind_inputs
pub type PlainInputs = HashMap<String, Vec<f64>>;

/// Splits decoded inputs into the cipher and plain maps
/// [`EvaluationContext::bind_inputs`](eva_backend::EvaluationContext::bind_inputs)
/// expects, rejecting duplicate names.
///
/// # Errors
///
/// Returns [`ServiceError::Protocol`] on duplicate input names.
pub fn partition_inputs(
    inputs: Vec<(String, InputValue)>,
) -> Result<(CipherInputs, PlainInputs), ServiceError> {
    let mut ciphers = HashMap::new();
    let mut plains = HashMap::new();
    for (name, value) in inputs {
        let duplicate = match value {
            InputValue::Cipher(ct) => ciphers.insert(name.clone(), *ct).is_some(),
            InputValue::Plain(values) => plains.insert(name.clone(), values).is_some(),
        };
        if duplicate {
            return Err(ServiceError::Protocol(format!(
                "duplicate input {name:?} in one evaluation request"
            )));
        }
    }
    Ok((ciphers, plains))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_core::{compile, CompilerOptions, Opcode, Program};

    fn compiled_fixture() -> CompiledProgram {
        let mut p = Program::new("fixture", 8);
        let x = p.input_cipher("x", 30);
        let w = p.input_vector("w", 20);
        let rot = p.instruction(Opcode::RotateLeft(2), &[x]);
        let prod = p.instruction(Opcode::Multiply, &[rot, w]);
        let sq = p.instruction(Opcode::Multiply, &[prod, prod]);
        p.output("out", sq, 30);
        compile(&p, &CompilerOptions::default()).unwrap()
    }

    #[test]
    fn manifest_reflects_the_compiled_program() {
        let compiled = compiled_fixture();
        let manifest = ProgramManifest::from_compiled(&compiled);
        assert_eq!(manifest.name, "fixture");
        assert_eq!(manifest.vec_size, 8);
        assert_eq!(manifest.degree, compiled.parameters.degree);
        assert_eq!(manifest.data_primes, compiled.parameters.data_primes);
        assert!(manifest.needs_relin);
        assert_eq!(manifest.rotation_steps, vec![2]);
        assert_eq!(manifest.inputs.len(), 2);
        assert!(manifest.inputs[0].cipher);
        assert!(!manifest.inputs[1].cipher);
        assert_eq!(manifest.outputs.len(), 1);
        assert!(manifest.outputs[0].cipher);
    }

    #[test]
    fn manifest_roundtrips_bit_exactly() {
        let manifest = ProgramManifest::from_compiled(&compiled_fixture());
        let bytes = manifest.to_wire_bytes();
        let restored = ProgramManifest::from_wire_bytes(&bytes).unwrap();
        assert_eq!(restored, manifest);
        assert_eq!(restored.to_wire_bytes(), bytes);
    }

    #[test]
    fn messages_roundtrip_over_a_byte_stream() {
        let manifest = ProgramManifest::from_compiled(&compiled_fixture());
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &Message::Hello { protocol: 1 }).unwrap();
        write_message(&mut buf, &Message::Manifest(Box::new(manifest.clone()))).unwrap();
        write_message(
            &mut buf,
            &Message::Inputs(vec![("w".into(), InputValue::Plain(vec![1.0, -2.5]))]),
        )
        .unwrap();
        write_message(&mut buf, &Message::Error("boom".into())).unwrap();
        write_message(&mut buf, &Message::Bye).unwrap();

        let mut cursor = &buf[..];
        assert!(matches!(
            expect_message(&mut cursor).unwrap(),
            Message::Hello { protocol: 1 }
        ));
        match expect_message(&mut cursor).unwrap() {
            Message::Manifest(m) => assert_eq!(*m, manifest),
            other => panic!("expected manifest, got {other:?}"),
        }
        match expect_message(&mut cursor).unwrap() {
            Message::Inputs(inputs) => {
                assert_eq!(inputs.len(), 1);
                assert_eq!(inputs[0].0, "w");
                assert!(matches!(&inputs[0].1, InputValue::Plain(v) if v == &vec![1.0, -2.5]));
            }
            other => panic!("expected inputs, got {other:?}"),
        }
        assert!(matches!(
            expect_message(&mut cursor).unwrap(),
            Message::Error(msg) if msg == "boom"
        ));
        assert!(matches!(expect_message(&mut cursor).unwrap(), Message::Bye));
        assert!(read_message(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_and_bad_tags_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &Message::Error("hello".into())).unwrap();
        // Cut into the payload: read_exact must fail, not hang or panic.
        let mut cursor = &buf[..buf.len() - 2];
        assert!(expect_message(&mut cursor).is_err());
        // Unknown tag.
        let mut bad = buf.clone();
        bad[0] = 200;
        let mut cursor = &bad[..];
        assert!(matches!(
            expect_message(&mut cursor),
            Err(ServiceError::Protocol(_))
        ));
        // Oversized frame length.
        let mut bad = buf;
        bad[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = &bad[..];
        assert!(matches!(
            expect_message(&mut cursor),
            Err(ServiceError::Protocol(_))
        ));
    }
}
