//! The session protocol spoken between [`EvaClient`](crate::EvaClient) and
//! [`EvaServer`](crate::EvaServer).
//!
//! Every message is one length-prefixed frame on the socket:
//!
//! ```text
//! tag (u8) · payload_len (u64, little-endian) · payload
//! ```
//!
//! and payloads are built from the `eva-wire` framing layer, so the same
//! reader/writer, envelopes and error type cover the whole stack. A session
//! proceeds:
//!
//! ```text
//! client                                server
//!   | -- Hello { protocol, resume? } ---> |   resume = eval-key fingerprint
//!   | <-- Manifest (EVAM, keys_cached) -- |   program name, shape, primes,
//!   |                                     |   rotation steps, input scales
//!   | -- EvalKeys { relin?, galois } ---> |   skipped iff keys_cached
//!   | -- Inputs [name -> ct | values] --> |   fresh ciphertexts travel
//!   | <-- Outputs [name -> ct | values] - |   seeded (EVAD, half the bytes);
//!   | -- Bye ---------------------------> |   repeat Inputs/Outputs freely
//! ```
//!
//! Secret keys never have a wire representation (see `eva-wire`), and the
//! public *encryption* key stays client-side too: the server receives only
//! the evaluation keys (relinearization + Galois) it needs to run the
//! circuit. A resuming client that names a fingerprint the server still
//! holds in its evaluation-key cache skips the multi-megabyte key upload
//! entirely.
//!
//! The authoritative byte-level specification — framing, negotiation rules,
//! the session state machine and the security argument — is
//! [`docs/PROTOCOL.md`](https://github.com/eva-reproduction/eva/blob/main/docs/PROTOCOL.md).

use std::collections::HashMap;
use std::io::{Read, Write};

use eva_backend::{needs_relinearization, NodeValue};
use eva_ckks::{Ciphertext, CkksContext, GaloisKeys, RelinearizationKey, SeededCiphertext};
use eva_core::{CompiledProgram, NodeKind, ValueType};
use eva_wire::{KeyFingerprint, Reader, WireError, WireObject, Writer};

use crate::error::ServiceError;
use crate::session::FrameAssembler;

/// Version of the session protocol (checked in the Hello message).
///
/// Version history: 1 — PR 4's original protocol (bare Hello, full `EVAC`
/// ciphertext uploads, unconditional key upload); 2 — seeded-ciphertext
/// transport, evaluation-key fingerprints and session resumption.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a single frame's payload (1 GiB), so a corrupt or hostile
/// length prefix cannot demand an unbounded buffer. Frames are additionally
/// read incrementally, so even below the cap a peer must actually send the
/// bytes it announced before they are held in memory.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// One program input as described by the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Input name (the program's input node name).
    pub name: String,
    /// Whether the input is encrypted (`Cipher`) or travels as plain values.
    pub cipher: bool,
    /// Exact `log2` scale the client must encode this input at
    /// (bit-for-bit; the server validates equality).
    pub scale_log2: f64,
}

/// One program output as described by the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSpec {
    /// Output name.
    pub name: String,
    /// Whether the output comes back encrypted.
    pub cipher: bool,
}

/// Everything a client needs to participate in a session: the program's
/// shape, the exact encryption parameters (actual primes, so client and
/// server scales agree bit-for-bit), the evaluation keys to generate and the
/// input/output interface.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramManifest {
    /// Program name.
    pub name: String,
    /// Program vector size (slots used per ciphertext).
    pub vec_size: usize,
    /// Ring degree `N`.
    pub degree: usize,
    /// Actual data primes, chain order (rescale consumes from the back).
    pub data_primes: Vec<u64>,
    /// Actual special key-switching prime.
    pub special_prime: u64,
    /// Whether the parameters satisfy the 128-bit security bound.
    pub secure: bool,
    /// Whether the program relinearizes (client must upload a relin key).
    pub needs_relin: bool,
    /// Rotation steps needing Galois keys — exactly the program's ROTATE
    /// step set, so the client uploads only the keys the circuit needs.
    pub rotation_steps: Vec<i64>,
    /// Live program inputs, in node order.
    pub inputs: Vec<InputSpec>,
    /// Program outputs, in declaration order.
    pub outputs: Vec<OutputSpec>,
}

impl ProgramManifest {
    /// Builds the manifest a server publishes for a compiled program. Only
    /// live (output-reachable) inputs are listed; dead inputs need no value.
    pub fn from_compiled(compiled: &CompiledProgram) -> Self {
        let program = &compiled.program;
        let live = program.live_mask();
        let inputs = program
            .nodes()
            .iter()
            .enumerate()
            .filter(|&(id, _)| live[id])
            .filter_map(|(_, node)| match &node.kind {
                NodeKind::Input { name } => Some(InputSpec {
                    name: name.clone(),
                    cipher: node.ty == ValueType::Cipher,
                    scale_log2: node.scale_log2,
                }),
                _ => None,
            })
            .collect();
        let outputs = program
            .outputs()
            .iter()
            .map(|output| OutputSpec {
                name: output.name.clone(),
                cipher: program.node(output.node).ty == ValueType::Cipher,
            })
            .collect();
        Self {
            name: program.name().to_string(),
            vec_size: program.vec_size(),
            degree: compiled.parameters.degree,
            data_primes: compiled.parameters.data_primes.clone(),
            special_prime: compiled.parameters.special_prime,
            secure: compiled.parameters.secure,
            needs_relin: needs_relinearization(compiled),
            rotation_steps: compiled.rotation_steps.clone(),
            inputs,
            outputs,
        }
    }
}

impl WireObject for ProgramManifest {
    const MAGIC: [u8; 4] = *b"EVAM";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        w.str(&self.name);
        w.u64(self.vec_size as u64);
        w.u64(self.degree as u64);
        w.u64_slice(&self.data_primes);
        w.u64(self.special_prime);
        w.bool(self.secure);
        w.bool(self.needs_relin);
        w.u32(self.rotation_steps.len() as u32);
        for &step in &self.rotation_steps {
            w.i64(step);
        }
        w.u32(self.inputs.len() as u32);
        for input in &self.inputs {
            w.str(&input.name);
            w.bool(input.cipher);
            w.f64(input.scale_log2);
        }
        w.u32(self.outputs.len() as u32);
        for output in &self.outputs {
            w.str(&output.name);
            w.bool(output.cipher);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.str()?;
        let vec_size = r.u64()? as usize;
        if vec_size == 0 || !vec_size.is_power_of_two() {
            return Err(WireError::Invalid(format!(
                "vector size {vec_size} is not a power of two"
            )));
        }
        let degree = r.u64()? as usize;
        if degree < 2 || !degree.is_power_of_two() || degree > eva_wire::MAX_WIRE_DEGREE {
            return Err(WireError::Invalid(format!(
                "ring degree {degree} out of range"
            )));
        }
        let data_primes = r.u64_slice()?;
        let special_prime = r.u64()?;
        let secure = r.bool()?;
        let needs_relin = r.bool()?;
        let step_count = r.u32()? as usize;
        let mut rotation_steps = Vec::with_capacity(step_count.min(1 << 16));
        for _ in 0..step_count {
            rotation_steps.push(r.i64()?);
        }
        let input_count = r.u32()? as usize;
        let mut inputs = Vec::with_capacity(input_count.min(1 << 16));
        for _ in 0..input_count {
            let name = r.str()?;
            let cipher = r.bool()?;
            let scale_log2 = r.f64()?;
            if !scale_log2.is_finite() {
                return Err(WireError::Invalid(format!(
                    "input {name:?} has a non-finite scale"
                )));
            }
            inputs.push(InputSpec {
                name,
                cipher,
                scale_log2,
            });
        }
        let output_count = r.u32()? as usize;
        let mut outputs = Vec::with_capacity(output_count.min(1 << 16));
        for _ in 0..output_count {
            outputs.push(OutputSpec {
                name: r.str()?,
                cipher: r.bool()?,
            });
        }
        Ok(Self {
            name,
            vec_size,
            degree,
            data_primes,
            special_prime,
            secure,
            needs_relin,
            rotation_steps,
            inputs,
            outputs,
        })
    }
}

/// A named value crossing the wire in either direction: `Cipher`-typed
/// program values travel as ciphertexts, plaintext values as raw reals (the
/// server encodes plaintext operands on demand, like the in-process
/// executor). Inputs (client → server) and outputs (server → client) share
/// this layout and codec.
#[derive(Debug, Clone)]
pub enum ValuePayload {
    /// An encrypted value, both polynomials dense (`EVAC`). Computed values
    /// (outputs) can only travel this way.
    Cipher(Box<Ciphertext>),
    /// A fresh encrypted value in seeded transport form (`EVAD`, roughly
    /// half the bytes): only the encryptor can produce these, so they travel
    /// client → server exclusively and the server expands them on receipt.
    Seeded(Box<SeededCiphertext>),
    /// A plaintext vector.
    Plain(Vec<f64>),
}

/// One named input travelling client → server.
pub type InputValue = ValuePayload;

/// One named output travelling server → client.
pub type OutputValue = ValuePayload;

impl From<NodeValue> for ValuePayload {
    fn from(value: NodeValue) -> Self {
        match value {
            NodeValue::Cipher(ct) => ValuePayload::Cipher(Box::new(ct)),
            NodeValue::Plain(v) => ValuePayload::Plain(v),
        }
    }
}

fn encode_named_values(w: &mut Writer, values: &[(String, ValuePayload)]) {
    w.u32(values.len() as u32);
    for (name, value) in values {
        w.str(name);
        match value {
            ValuePayload::Cipher(ct) => {
                w.u8(0);
                ct.encode(w);
            }
            ValuePayload::Plain(values) => {
                w.u8(1);
                w.u64(values.len() as u64);
                for &v in values {
                    w.f64(v);
                }
            }
            ValuePayload::Seeded(ct) => {
                w.u8(2);
                ct.encode(w);
            }
        }
    }
}

fn decode_named_values(r: &mut Reader<'_>) -> Result<Vec<(String, ValuePayload)>, WireError> {
    let count = r.u32()? as usize;
    let mut values = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let name = r.str()?;
        let value = match r.u8()? {
            0 => ValuePayload::Cipher(Box::new(Ciphertext::decode(r)?)),
            1 => ValuePayload::Plain(decode_f64_values(r)?),
            2 => ValuePayload::Seeded(Box::new(SeededCiphertext::decode(r)?)),
            other => return Err(WireError::Invalid(format!("unknown value tag {other}"))),
        };
        values.push((name, value));
    }
    Ok(values)
}

/// A protocol message.
#[derive(Debug)]
pub enum Message {
    /// Client → server session opener.
    Hello {
        /// The client's protocol version.
        protocol: u32,
        /// Fingerprint of the evaluation keys the client would upload, when
        /// it believes the server may still hold them cached from an earlier
        /// session (session resumption).
        resume: Option<KeyFingerprint>,
    },
    /// Server → client program description.
    Manifest {
        /// The program manifest (`EVAM` object).
        manifest: Box<ProgramManifest>,
        /// Whether the server found the Hello's resume fingerprint in its
        /// evaluation-key cache. When `true` the client must **not** send
        /// EvalKeys and proceeds straight to Inputs.
        keys_cached: bool,
    },
    /// Client → server evaluation-key upload.
    EvalKeys {
        /// Relinearization key, iff the manifest demands one.
        relin: Option<Box<RelinearizationKey>>,
        /// Galois keys for the manifest's rotation steps.
        galois: Box<GaloisKeys>,
    },
    /// Client → server named inputs for one evaluation.
    Inputs(Vec<(String, InputValue)>),
    /// Server → client named outputs of one evaluation.
    Outputs(Vec<(String, OutputValue)>),
    /// Either direction: the current request failed.
    Error(String),
    /// Client → server: end of session.
    Bye,
}

/// Frame tag of the Hello message.
pub const TAG_HELLO: u8 = 1;
/// Frame tag of the Manifest message.
pub const TAG_MANIFEST: u8 = 2;
/// Frame tag of the EvalKeys message (absent in resumed sessions — traffic
/// audits assert a warm reconnect carries zero bytes under this tag).
pub const TAG_EVAL_KEYS: u8 = 3;
/// Frame tag of the Inputs message.
pub const TAG_INPUTS: u8 = 4;
/// Frame tag of the Outputs message.
pub const TAG_OUTPUTS: u8 = 5;
/// Frame tag of the Error message.
pub const TAG_ERROR: u8 = 6;
/// Frame tag of the Bye message.
pub const TAG_BYE: u8 = 7;

pub(crate) fn encode_payload(message: &Message) -> (u8, Vec<u8>) {
    let mut w = Writer::new();
    let tag = match message {
        Message::Hello { protocol, resume } => {
            w.u32(*protocol);
            match resume {
                Some(fingerprint) => {
                    w.bool(true);
                    w.raw(fingerprint.as_bytes());
                }
                None => w.bool(false),
            }
            TAG_HELLO
        }
        Message::Manifest {
            manifest,
            keys_cached,
        } => {
            manifest.encode(&mut w);
            w.bool(*keys_cached);
            TAG_MANIFEST
        }
        Message::EvalKeys { relin, galois } => {
            match relin {
                Some(key) => {
                    w.bool(true);
                    key.encode(&mut w);
                }
                None => w.bool(false),
            }
            galois.encode(&mut w);
            TAG_EVAL_KEYS
        }
        Message::Inputs(inputs) => {
            encode_named_values(&mut w, inputs);
            TAG_INPUTS
        }
        Message::Outputs(outputs) => {
            encode_named_values(&mut w, outputs);
            TAG_OUTPUTS
        }
        Message::Error(msg) => {
            w.str(msg);
            TAG_ERROR
        }
        Message::Bye => TAG_BYE,
    };
    (tag, w.into_bytes())
}

fn decode_f64_values(r: &mut Reader<'_>) -> Result<Vec<f64>, WireError> {
    let count = r.u64()? as usize;
    if count.checked_mul(8).is_none_or(|b| b > r.remaining()) {
        return Err(WireError::UnexpectedEnd);
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.f64()?);
    }
    Ok(values)
}

pub(crate) fn decode_payload(tag: u8, payload: &[u8]) -> Result<Message, ServiceError> {
    let mut r = Reader::new(payload);
    let message = match tag {
        TAG_HELLO => {
            let protocol = r.u32()?;
            // A version-1 Hello is exactly the 4-byte version field. Accept
            // that shape so version negotiation can answer with a clean
            // "unsupported protocol" Error instead of a decode failure.
            let resume = if r.is_empty() {
                None
            } else if r.bool()? {
                let bytes: [u8; 32] = r.take(32)?.try_into().expect("take(32) returns 32 bytes");
                Some(KeyFingerprint(bytes))
            } else {
                None
            };
            Message::Hello { protocol, resume }
        }
        TAG_MANIFEST => {
            let manifest = Box::new(ProgramManifest::decode(&mut r)?);
            let keys_cached = r.bool()?;
            Message::Manifest {
                manifest,
                keys_cached,
            }
        }
        TAG_EVAL_KEYS => {
            let relin = if r.bool()? {
                Some(Box::new(RelinearizationKey::decode(&mut r)?))
            } else {
                None
            };
            let galois = Box::new(GaloisKeys::decode(&mut r)?);
            Message::EvalKeys { relin, galois }
        }
        TAG_INPUTS => Message::Inputs(decode_named_values(&mut r)?),
        TAG_OUTPUTS => Message::Outputs(decode_named_values(&mut r)?),
        TAG_ERROR => Message::Error(r.str()?),
        TAG_BYE => Message::Bye,
        other => {
            return Err(ServiceError::Protocol(format!(
                "unknown message tag {other}"
            )))
        }
    };
    r.expect_end().map_err(ServiceError::Wire)?;
    Ok(message)
}

/// Writes one framed message and flushes the stream.
///
/// # Errors
///
/// Returns [`ServiceError::Io`] on socket failure.
pub fn write_message<S: Write>(stream: &mut S, message: &Message) -> Result<(), ServiceError> {
    let (tag, payload) = encode_payload(message);
    write_frame(stream, tag, &payload)
}

/// Writes one already-encoded frame and flushes the stream (the raw half of
/// [`write_message`]; used where the payload bytes are also needed for
/// something else, e.g. fingerprinting a key upload without re-serializing
/// it).
pub(crate) fn write_frame<S: Write>(
    stream: &mut S,
    tag: u8,
    payload: &[u8],
) -> Result<(), ServiceError> {
    stream.write_all(&[tag])?;
    stream.write_all(&(payload.len() as u64).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one framed message. Returns `Ok(None)` on a clean end-of-stream
/// (the peer closed between messages); truncation inside a frame is an
/// error.
///
/// # Errors
///
/// Returns [`ServiceError`] on socket failure, oversized frames or
/// undecodable payloads.
pub fn read_message<S: Read>(stream: &mut S) -> Result<Option<Message>, ServiceError> {
    match read_frame(stream)? {
        Some((tag, payload)) => decode_payload(tag, &payload).map(Some),
        None => Ok(None),
    }
}

/// Reads one raw frame (the byte-level half of [`read_message`]), returning
/// `Ok(None)` on a clean end-of-stream between frames. Exposed crate-wide so
/// the server can fingerprint a key-upload payload without re-serializing
/// the decoded keys.
///
/// # Errors
///
/// Returns [`ServiceError`] on socket failure, oversized frames or
/// mid-frame truncation.
pub(crate) fn read_frame<S: Read>(stream: &mut S) -> Result<Option<(u8, Vec<u8>)>, ServiceError> {
    read_frame_checked(stream, |_, _| Ok(()))
}

/// Bytes a blocking frame read requests from the socket at a time. The
/// assembler caps each request at the current frame's remaining bytes, so a
/// read never consumes bytes of the *next* pipelined frame.
pub(crate) const READ_CHUNK_BYTES: usize = 64 * 1024;

/// [`read_frame`] with an admission check run against the frame header —
/// tag and **announced** length — before a single payload byte is read. The
/// server threads its per-session byte quotas through here: an over-quota
/// frame is refused at the cost of its 9-byte header, not of buffering the
/// payload.
///
/// The payload is streamed through the shared [`FrameAssembler`] in
/// [`READ_CHUNK_BYTES`] chunks — the same chunked path the reactor uses —
/// so memory grows only as announced bytes actually arrive, and an
/// EvalKeys payload is content-fingerprinted incrementally as it streams.
///
/// # Errors
///
/// As [`read_frame`], plus whatever `admit` returns.
pub(crate) fn read_frame_checked<S: Read>(
    stream: &mut S,
    admit: impl FnOnce(u8, u64) -> Result<(), ServiceError>,
) -> Result<Option<(u8, Vec<u8>)>, ServiceError> {
    let mut admit = Some(admit);
    let mut assembler = FrameAssembler::new();
    let mut out = std::collections::VecDeque::new();
    let mut buf = [0u8; READ_CHUNK_BYTES];
    loop {
        let want = assembler.bytes_wanted().min(buf.len() as u64) as usize;
        // A bare `read` (unlike `read_exact`) surfaces EINTR; retry it so a
        // signal delivered mid-frame does not kill the session.
        let n = match stream.read(&mut buf[..want]) {
            Ok(n) => n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err.into()),
        };
        if n == 0 {
            // EOF between frames is a clean close; inside one, a disconnect.
            return if assembler.is_idle() {
                Ok(None)
            } else {
                Err(ServiceError::Disconnected)
            };
        }
        assembler.push(
            &buf[..n],
            &mut |tag, len| (admit.take().expect("reads stop at the frame boundary"))(tag, len),
            &mut out,
        )?;
        if let Some(frame) = out.pop_front() {
            return Ok(Some((frame.tag, frame.payload)));
        }
    }
}

/// The human name of a message (for "expected X, got Y" protocol errors).
pub(crate) fn message_name(message: &Message) -> &'static str {
    match message {
        Message::Hello { .. } => "Hello",
        Message::Manifest { .. } => "Manifest",
        Message::EvalKeys { .. } => "EvalKeys",
        Message::Inputs(_) => "Inputs",
        Message::Outputs(_) => "Outputs",
        Message::Error(_) => "Error",
        Message::Bye => "Bye",
    }
}

/// Reads one message, treating end-of-stream as a protocol violation (used
/// where the protocol requires a next message).
///
/// # Errors
///
/// Returns [`ServiceError::Disconnected`] on end-of-stream, otherwise as
/// [`read_message`].
pub fn expect_message<S: Read>(stream: &mut S) -> Result<Message, ServiceError> {
    read_message(stream)?.ok_or(ServiceError::Disconnected)
}

/// Named encrypted inputs, as [`EvaluationContext::bind_inputs`] expects.
///
/// [`EvaluationContext::bind_inputs`]: eva_backend::EvaluationContext::bind_inputs
pub type CipherInputs = HashMap<String, Ciphertext>;

/// Named plaintext inputs, as [`EvaluationContext::bind_inputs`] expects.
///
/// [`EvaluationContext::bind_inputs`]: eva_backend::EvaluationContext::bind_inputs
pub type PlainInputs = HashMap<String, Vec<f64>>;

/// Splits decoded inputs into the cipher and plain maps
/// [`EvaluationContext::bind_inputs`](eva_backend::EvaluationContext::bind_inputs)
/// expects, rejecting duplicate names. Seeded ciphertexts are expanded
/// against `context` here — after this point the executor only ever sees
/// full ciphertexts, which then face the usual `bind_inputs` validation.
///
/// # Errors
///
/// Returns [`ServiceError::Protocol`] on duplicate input names or a seeded
/// ciphertext whose shape does not fit the context.
pub fn partition_inputs(
    inputs: Vec<(String, InputValue)>,
    context: &CkksContext,
) -> Result<(CipherInputs, PlainInputs), ServiceError> {
    let mut ciphers = HashMap::new();
    let mut plains = HashMap::new();
    for (name, value) in inputs {
        let duplicate = match value {
            InputValue::Cipher(ct) => ciphers.insert(name.clone(), *ct).is_some(),
            InputValue::Seeded(seeded) => {
                let ct = seeded.expand(context).map_err(|err| {
                    ServiceError::Protocol(format!("seeded input {name:?} rejected: {err}"))
                })?;
                ciphers.insert(name.clone(), ct).is_some()
            }
            InputValue::Plain(values) => plains.insert(name.clone(), values).is_some(),
        };
        if duplicate {
            return Err(ServiceError::Protocol(format!(
                "duplicate input {name:?} in one evaluation request"
            )));
        }
    }
    Ok((ciphers, plains))
}

/// One frame of a captured protocol byte stream, as returned by
/// [`frame_index`]: the message tag and the payload length in bytes.
pub type FrameSummary = (u8, u64);

/// Walks a captured stream of protocol frames (e.g. the `sent` half of a
/// [`RecordingStream`](crate::RecordingStream)) and returns each frame's tag
/// and payload length — the tool traffic audits use to prove, for example,
/// that a resumed session carried **zero** [`TAG_EVAL_KEYS`] bytes.
///
/// # Errors
///
/// Returns [`WireError::UnexpectedEnd`] if the capture ends inside a frame.
pub fn frame_index(captured: &[u8]) -> Result<Vec<FrameSummary>, WireError> {
    let mut frames = Vec::new();
    let mut r = Reader::new(captured);
    while !r.is_empty() {
        let tag = r.u8()?;
        let len = r.u64()?;
        if len > r.remaining() as u64 {
            return Err(WireError::UnexpectedEnd);
        }
        r.take(len as usize)?;
        frames.push((tag, len));
    }
    Ok(frames)
}

/// Sums the payload bytes of every frame in `captured` carrying `tag`
/// (convenience over [`frame_index`] for audits).
///
/// # Errors
///
/// Returns [`WireError::UnexpectedEnd`] if the capture ends inside a frame.
pub fn bytes_with_tag(captured: &[u8], tag: u8) -> Result<u64, WireError> {
    Ok(frame_index(captured)?
        .into_iter()
        .filter(|&(t, _)| t == tag)
        .map(|(_, len)| len)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_core::{compile, CompilerOptions, Opcode, Program};

    fn compiled_fixture() -> CompiledProgram {
        let mut p = Program::new("fixture", 8);
        let x = p.input_cipher("x", 30);
        let w = p.input_vector("w", 20);
        let rot = p.instruction(Opcode::RotateLeft(2), &[x]);
        let prod = p.instruction(Opcode::Multiply, &[rot, w]);
        let sq = p.instruction(Opcode::Multiply, &[prod, prod]);
        p.output("out", sq, 30);
        compile(&p, &CompilerOptions::default()).unwrap()
    }

    #[test]
    fn manifest_reflects_the_compiled_program() {
        let compiled = compiled_fixture();
        let manifest = ProgramManifest::from_compiled(&compiled);
        assert_eq!(manifest.name, "fixture");
        assert_eq!(manifest.vec_size, 8);
        assert_eq!(manifest.degree, compiled.parameters.degree);
        assert_eq!(manifest.data_primes, compiled.parameters.data_primes);
        assert!(manifest.needs_relin);
        assert_eq!(manifest.rotation_steps, vec![2]);
        assert_eq!(manifest.inputs.len(), 2);
        assert!(manifest.inputs[0].cipher);
        assert!(!manifest.inputs[1].cipher);
        assert_eq!(manifest.outputs.len(), 1);
        assert!(manifest.outputs[0].cipher);
    }

    #[test]
    fn manifest_roundtrips_bit_exactly() {
        let manifest = ProgramManifest::from_compiled(&compiled_fixture());
        let bytes = manifest.to_wire_bytes();
        let restored = ProgramManifest::from_wire_bytes(&bytes).unwrap();
        assert_eq!(restored, manifest);
        assert_eq!(restored.to_wire_bytes(), bytes);
    }

    #[test]
    fn messages_roundtrip_over_a_byte_stream() {
        let manifest = ProgramManifest::from_compiled(&compiled_fixture());
        let fingerprint = KeyFingerprint([7u8; 32]);
        let mut buf: Vec<u8> = Vec::new();
        write_message(
            &mut buf,
            &Message::Hello {
                protocol: 2,
                resume: None,
            },
        )
        .unwrap();
        write_message(
            &mut buf,
            &Message::Hello {
                protocol: 2,
                resume: Some(fingerprint),
            },
        )
        .unwrap();
        write_message(
            &mut buf,
            &Message::Manifest {
                manifest: Box::new(manifest.clone()),
                keys_cached: true,
            },
        )
        .unwrap();
        write_message(
            &mut buf,
            &Message::Inputs(vec![("w".into(), InputValue::Plain(vec![1.0, -2.5]))]),
        )
        .unwrap();
        write_message(&mut buf, &Message::Error("boom".into())).unwrap();
        write_message(&mut buf, &Message::Bye).unwrap();

        // The frame audit sees exactly the messages written above.
        let tags: Vec<u8> = frame_index(&buf).unwrap().iter().map(|&(t, _)| t).collect();
        assert_eq!(
            tags,
            vec![
                TAG_HELLO,
                TAG_HELLO,
                TAG_MANIFEST,
                TAG_INPUTS,
                TAG_ERROR,
                TAG_BYE
            ]
        );
        assert_eq!(bytes_with_tag(&buf, TAG_EVAL_KEYS).unwrap(), 0);
        assert!(bytes_with_tag(&buf, TAG_MANIFEST).unwrap() > 0);

        let mut cursor = &buf[..];
        assert!(matches!(
            expect_message(&mut cursor).unwrap(),
            Message::Hello {
                protocol: 2,
                resume: None
            }
        ));
        match expect_message(&mut cursor).unwrap() {
            Message::Hello {
                protocol: 2,
                resume: Some(fp),
            } => assert_eq!(fp, fingerprint),
            other => panic!("expected resuming hello, got {other:?}"),
        }
        match expect_message(&mut cursor).unwrap() {
            Message::Manifest {
                manifest: m,
                keys_cached,
            } => {
                assert_eq!(*m, manifest);
                assert!(keys_cached);
            }
            other => panic!("expected manifest, got {other:?}"),
        }
        match expect_message(&mut cursor).unwrap() {
            Message::Inputs(inputs) => {
                assert_eq!(inputs.len(), 1);
                assert_eq!(inputs[0].0, "w");
                assert!(matches!(&inputs[0].1, InputValue::Plain(v) if v == &vec![1.0, -2.5]));
            }
            other => panic!("expected inputs, got {other:?}"),
        }
        assert!(matches!(
            expect_message(&mut cursor).unwrap(),
            Message::Error(msg) if msg == "boom"
        ));
        assert!(matches!(expect_message(&mut cursor).unwrap(), Message::Bye));
        assert!(read_message(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn version_one_hello_still_decodes() {
        // A PR-4 client's Hello is the bare 4-byte version field; it must
        // decode (to resume: None) so the server can answer with a polite
        // version-mismatch Error instead of a framing error.
        let mut buf: Vec<u8> = Vec::new();
        buf.push(TAG_HELLO);
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            expect_message(&mut cursor).unwrap(),
            Message::Hello {
                protocol: 1,
                resume: None
            }
        ));
    }

    #[test]
    fn seeded_inputs_are_expanded_when_partitioned() {
        use eva_ckks::{
            CkksContext, CkksEncoder, CkksParameters, KeyGenerator, SymmetricEncryptor,
        };

        let params = CkksParameters::new_insecure(32, &[30, 30, 40], 45).unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let keygen = KeyGenerator::from_seed(ctx.clone(), 3);
        let encoder = CkksEncoder::new(ctx.clone());
        let mut seeded_enc =
            SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 4);
        let mut full_enc =
            SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 4);
        let pt = encoder.encode(&[1.0; 8], 30.0, 3);
        let seeded = seeded_enc.encrypt_seeded(&pt);
        let expected = full_enc.encrypt(&pt);

        let inputs = vec![
            ("x".to_string(), InputValue::Seeded(Box::new(seeded))),
            ("w".to_string(), InputValue::Plain(vec![2.0])),
        ];
        let (ciphers, plains) = partition_inputs(inputs, &ctx).unwrap();
        assert_eq!(ciphers["x"].polys(), expected.polys());
        assert_eq!(plains["w"], vec![2.0]);

        // A seeded ciphertext that does not fit the context is rejected
        // before it ever reaches the executor.
        let small = CkksContext::new(CkksParameters::new_insecure(32, &[30], 40).unwrap()).unwrap();
        let mut enc = SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 5);
        let bad = enc.encrypt_seeded(&encoder.encode(&[1.0; 8], 30.0, 2));
        let err = partition_inputs(
            vec![("x".to_string(), InputValue::Seeded(Box::new(bad)))],
            &small,
        )
        .unwrap_err();
        assert!(matches!(err, ServiceError::Protocol(_)));
    }

    #[test]
    fn truncated_frames_and_bad_tags_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &Message::Error("hello".into())).unwrap();
        // Cut into the payload: read_exact must fail, not hang or panic.
        let mut cursor = &buf[..buf.len() - 2];
        assert!(expect_message(&mut cursor).is_err());
        // Unknown tag.
        let mut bad = buf.clone();
        bad[0] = 200;
        let mut cursor = &bad[..];
        assert!(matches!(
            expect_message(&mut cursor),
            Err(ServiceError::Protocol(_))
        ));
        // Oversized frame length.
        let mut bad = buf;
        bad[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = &bad[..];
        assert!(matches!(
            expect_message(&mut cursor),
            Err(ServiceError::Protocol(_))
        ));
    }
}
