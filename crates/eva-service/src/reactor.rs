//! The event-driven service core: one IO thread multiplexing every session.
//!
//! The blocking transport spends one OS thread per session, most of it
//! parked in `read(2)`. The reactor replaces that with a single thread
//! around an epoll [`Poller`] (the vendored `polling` crate): non-blocking
//! sockets feed each connection's [`FrameAssembler`], completed frames
//! drive its [`SessionMachine`], and `Inputs` rounds become jobs on the
//! shared [`Scheduler`] — a bounded pool of evaluation workers that orders
//! jobs by the cost model's prediction and admits concurrent evaluations
//! under the peak-memory forecast. Worker completions come back over a wake
//! pipe, so the reactor sleeps in `epoll_wait` whenever nothing is ready.
//!
//! Protocol semantics are the blocking transport's, re-expressed as reactor
//! state:
//!
//! * the per-message read **deadline** becomes a reactor timer, armed from
//!   the session's config snapshot at admission and re-armed on every write
//!   and every completed frame (disarmed while an evaluation is in flight);
//! * **quotas** are charged against announced frame headers inside the
//!   assembler, before payload bytes are accepted;
//! * the **error-frame-before-close** rule becomes a draining close state:
//!   the frame is queued, the peer's in-flight bytes are read and discarded
//!   for a bounded window so the close is a FIN rather than an RST, then
//!   the socket is dropped;
//! * **panic containment** covers both the session machine (around every
//!   frame step) and the evaluation workers (inside the scheduler); either
//!   way the session dies with the `internal error` frame and a
//!   [`ServerStats::session_panics`](crate::ServerStats::session_panics)
//!   count, never the server.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use polling::{Event, Interest, Poller};

use crate::error::ServiceError;
use crate::protocol::{encode_payload, Message, READ_CHUNK_BYTES};
use crate::sched::{Completion, Job, JobOutcome, Scheduler};
use crate::server::{EvaServer, SessionGuard, SessionReport};
use crate::session::{FrameAssembler, SessionMachine, Step};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long an errored connection keeps draining the peer's in-flight bytes
/// before closing (the reactor's `drain_before_close`): long enough for the
/// peer to read the error frame, short enough that a trickling peer cannot
/// hold the slot.
const ERROR_DRAIN_WINDOW: Duration = Duration::from_millis(500);

/// Hard cap on a closing connection's lifetime when the peer neither drains
/// our error frame nor hangs up and no write timeout is configured.
const DEFAULT_CLOSE_CAP: Duration = Duration::from_secs(30);

/// Close state: the connection no longer speaks protocol, it only flushes
/// its remaining output and (for error closes) drains the peer's in-flight
/// bytes so the close is a FIN.
#[derive(Debug)]
struct Closing {
    /// Reads are discarded (rather than refused) until this instant; the
    /// socket closes once output is flushed and either the peer hit EOF or
    /// this window passed. Clean closes set it to "now".
    drain_until: Instant,
    /// The socket closes at this instant no matter what.
    hard: Instant,
}

/// One multiplexed connection.
struct Conn {
    token: u64,
    /// Session id (0 for busy-rejected connections, which never get one).
    id: u64,
    addr: SocketAddr,
    stream: TcpStream,
    assembler: FrameAssembler,
    /// `None` for busy-rejected connections (no session was admitted).
    machine: Option<SessionMachine>,
    /// Completed frames not yet fed to the machine (one frame per step;
    /// frames queue here while an evaluation is in flight).
    pending: VecDeque<crate::session::Frame>,
    /// An error raised while reading (oversized frame, quota refusal, socket
    /// error) that the step sweep turns into an error close — *after* the
    /// frames that completed before it, preserving the blocking transport's
    /// one-frame-at-a-time ordering.
    pending_error: Option<ServiceError>,
    /// Outgoing bytes not yet written (`out[out_pos..]` is unsent).
    out: Vec<u8>,
    out_pos: usize,
    /// The session's read-deadline budget, snapshotted at admission (live
    /// config retunes apply to sessions started afterwards, exactly like
    /// the blocking transport).
    budget: Option<Duration>,
    /// When the current message's budget expires (None while disarmed).
    expires: Option<Instant>,
    closing: Option<Closing>,
    /// Result recorded when the close was initiated (the session's slot
    /// value in `serve_sessions` mode).
    result: Option<Result<SessionReport, ServiceError>>,
    slot: Option<usize>,
    eof: bool,
    /// An evaluation job is in flight for this connection (reads pause).
    evaluating: bool,
    /// Releases the concurrency slot when dropped with the connection.
    _guard: Option<SessionGuard>,
    /// Whether the fd is currently registered with the poller, and with
    /// what interest. A connection with nothing to wait for is deregistered
    /// outright so unmaskable `EPOLLHUP` events cannot spin the loop.
    registered: Option<Interest>,
}

impl Conn {
    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn queue_frames(&mut self, frames: &[(u8, Vec<u8>)]) {
        for (tag, payload) in frames {
            self.out.push(*tag);
            self.out
                .extend_from_slice(&(payload.len() as u64).to_le_bytes());
            self.out.extend_from_slice(payload);
        }
    }

    /// Re-arms the per-message deadline (fresh budget from now).
    fn arm_deadline(&mut self, now: Instant) {
        self.expires = self.budget.map(|budget| now + budget);
    }

    /// The readiness this connection currently needs, or `None` to be
    /// deregistered entirely.
    fn desired_interest(&self, now: Instant) -> Option<Interest> {
        let readable = if let Some(closing) = &self.closing {
            !self.eof && now < closing.drain_until
        } else {
            !self.eof && !self.evaluating
        };
        let writable = self.has_output();
        if !readable && !writable {
            return None;
        }
        Some(Interest { readable, writable })
    }

    /// The next instant this connection needs the reactor to look at it
    /// even without IO readiness.
    fn next_timer(&self) -> Option<Instant> {
        match &self.closing {
            Some(closing) => {
                if self.has_output() {
                    Some(closing.hard)
                } else if self.eof {
                    None // closes immediately in the sweep
                } else {
                    Some(closing.drain_until.min(closing.hard))
                }
            }
            None => self.expires,
        }
    }
}

/// How a serve call terminates.
enum Mode {
    /// Accept exactly this many connections, then run them to completion.
    Sessions(usize),
    /// Accept until [`EvaServer::begin_shutdown`], then drain.
    Forever,
}

/// The event loop. One instance serves one listener; the blocking
/// [`EvaServer::serve_sessions`]/[`EvaServer::serve_forever`] facades each
/// construct one per call.
pub(crate) struct Reactor {
    server: EvaServer,
    poller: Poller,
}

impl Reactor {
    pub(crate) fn new(server: EvaServer) -> Result<Self, ServiceError> {
        Ok(Self {
            server,
            poller: Poller::new()?,
        })
    }

    pub(crate) fn serve_sessions(
        self,
        listener: &TcpListener,
        sessions: usize,
    ) -> Result<Vec<Result<SessionReport, ServiceError>>, ServiceError> {
        let mut slots: Vec<Option<Result<SessionReport, ServiceError>>> =
            (0..sessions).map(|_| None).collect();
        self.run(listener, Mode::Sessions(sessions), &mut slots)?;
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(ServiceError::Protocol(
                        "session ended without a recorded result".into(),
                    ))
                })
            })
            .collect())
    }

    pub(crate) fn serve_forever(self, listener: &TcpListener) -> Result<(), ServiceError> {
        let mut slots = Vec::new();
        self.run(listener, Mode::Forever, &mut slots)
    }

    fn run(
        self,
        listener: &TcpListener,
        mode: Mode,
        slots: &mut [Option<Result<SessionReport, ServiceError>>],
    ) -> Result<(), ServiceError> {
        let server = &self.server;
        let poller = &self.poller;
        server.set_listener_addr(listener.local_addr().ok());
        listener.set_nonblocking(true)?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;

        // The wake pipe: evaluation workers write one byte per completion so
        // a reactor parked in epoll_wait notices finished jobs immediately.
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        let config = server.config();
        let workers = match config.eval_workers {
            0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
            n => n,
        };
        let scheduler = Scheduler::new(
            workers,
            server.memory_budget(),
            server.sched_gauges(),
            Box::new(move || {
                // Best effort: a full pipe already guarantees a pending wake.
                let _ = (&wake_tx).write(&[1u8]);
            }),
        );

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut events: Vec<Event> = Vec::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut accepted = 0usize;
        let mut accepting = true;
        let result = loop {
            // Termination: every accepted session has fully closed.
            let done = match mode {
                Mode::Sessions(n) => accepted == n && conns.is_empty(),
                Mode::Forever => !accepting && conns.is_empty(),
            };
            if done {
                break Ok(());
            }
            if accepting && matches!(mode, Mode::Forever) && server.is_shutting_down() {
                accepting = false;
                let _ = poller.delete(listener.as_raw_fd());
            }

            let now = Instant::now();
            let timeout = conns
                .values()
                .filter_map(Conn::next_timer)
                .min()
                .map(|at| at.saturating_duration_since(now));
            if let Err(err) = poller.wait(&mut events, timeout) {
                break Err(err.into());
            }

            let now = Instant::now();
            let mut accept_ready = false;
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKE => drain_wake_pipe(&wake_rx),
                    token => {
                        if let Some(conn) = conns.get_mut(&token) {
                            if event.readable || event.closed {
                                read_conn(conn);
                            }
                        }
                    }
                }
            }

            if accept_ready && accepting {
                match self.accept_ready(
                    listener,
                    &mode,
                    &mut conns,
                    &mut next_token,
                    &mut accepted,
                    &mut accepting,
                    now,
                ) {
                    Ok(()) => {}
                    Err(err) => break Err(err),
                }
            }

            for completion in scheduler.drain_completions() {
                let Completion { token, outcome } = completion;
                if let Some(conn) = conns.get_mut(&token) {
                    self.handle_completion(conn, outcome, &scheduler, now);
                }
            }

            // Protocol sweep: advance machines, flush output, fire timers,
            // and close whatever is due.
            let mut closed: Vec<u64> = Vec::new();
            for conn in conns.values_mut() {
                self.step_conn(conn, &scheduler, now);
                self.flush_conn(conn, now);
                self.check_timers(conn, now);
                if close_due(conn, now) {
                    closed.push(conn.token);
                }
            }
            for token in closed {
                let mut conn = conns.remove(&token).expect("token from sweep");
                if conn.registered.is_some() {
                    let _ = poller.delete(conn.stream.as_raw_fd());
                }
                if let Some(slot) = conn.slot {
                    slots[slot] = conn.result.take();
                } else if matches!(mode, Mode::Forever) {
                    if let Some(Err(err)) = &conn.result {
                        if conn.machine.is_some() {
                            eprintln!(
                                "eva-service: session {} from {} failed: {err}",
                                conn.id, conn.addr
                            );
                        }
                    }
                }
            }
            for conn in conns.values_mut() {
                sync_interest(poller, conn, now);
            }
        };
        let _ = listener.set_nonblocking(false);
        if accepting {
            let _ = poller.delete(listener.as_raw_fd());
        }
        // Scheduler drop joins the workers: in-flight evaluations complete
        // before serve returns, so shutdown drains rather than aborts.
        drop(scheduler);
        result
    }

    /// Accepts every connection currently queued on the listener.
    #[allow(clippy::too_many_arguments)]
    fn accept_ready(
        &self,
        listener: &TcpListener,
        mode: &Mode,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
        accepted: &mut usize,
        accepting: &mut bool,
        now: Instant,
    ) -> Result<(), ServiceError> {
        loop {
            let (stream, addr) = match listener.accept() {
                Ok(pair) => pair,
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(err) => return Err(err.into()),
            };
            if matches!(mode, Mode::Forever) && self.server.is_shutting_down() {
                // begin_shutdown's wake connection (or a late client).
                drop(stream);
                *accepting = false;
                let _ = self.poller.delete(listener.as_raw_fd());
                return Ok(());
            }
            let slot = match mode {
                Mode::Sessions(_) => Some(*accepted),
                Mode::Forever => None,
            };
            let token = *next_token;
            *next_token += 1;
            let conn = self.admit_conn(stream, addr, token, slot, now);
            conns.insert(token, conn);
            if let Mode::Sessions(n) = mode {
                *accepted += 1;
                if *accepted == *n {
                    *accepting = false;
                    let _ = self.poller.delete(listener.as_raw_fd());
                    return Ok(());
                }
            }
        }
    }

    /// Builds the connection state for one accepted socket: an admitted
    /// session with a machine and an armed deadline, or a busy rejection
    /// already in its draining close.
    fn admit_conn(
        &self,
        stream: TcpStream,
        addr: SocketAddr,
        token: u64,
        slot: Option<usize>,
        now: Instant,
    ) -> Conn {
        let server = &self.server;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).ok();
        let mut conn = Conn {
            token,
            id: 0,
            addr,
            stream,
            assembler: FrameAssembler::new(),
            machine: None,
            pending: VecDeque::new(),
            pending_error: None,
            out: Vec::new(),
            out_pos: 0,
            budget: None,
            expires: None,
            closing: None,
            result: None,
            slot,
            eof: false,
            evaluating: false,
            _guard: None,
            registered: None,
        };
        match server.try_begin_session() {
            Some(guard) => {
                server.counters().started.fetch_add(1, Ordering::Relaxed);
                let config = server.config();
                conn.id = server.next_session_id();
                conn.budget = config.read_deadline;
                conn.machine = Some(SessionMachine::new(server.clone()));
                conn._guard = Some(guard);
                conn.arm_deadline(now);
            }
            None => {
                server
                    .counters()
                    .busy_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let message = server.busy_message();
                conn.queue_frames(&[encode_payload(&Message::Error(message.clone()))]);
                conn.result = Some(Err(ServiceError::Protocol(message)));
                conn.closing = Some(self.closing_state(now, ERROR_DRAIN_WINDOW));
            }
        }
        conn
    }

    fn closing_state(&self, now: Instant, drain: Duration) -> Closing {
        let cap = self
            .server
            .config()
            .write_timeout
            .unwrap_or(DEFAULT_CLOSE_CAP);
        Closing {
            drain_until: now + drain,
            hard: now + cap + drain,
        }
    }

    /// Counts one cleanly-completed session and returns its slot result.
    fn record_completed(&self, report: SessionReport) -> Result<SessionReport, ServiceError> {
        let counters = self.server.counters();
        counters.completed.fetch_add(1, Ordering::Relaxed);
        if report.resumed {
            counters.resumed.fetch_add(1, Ordering::Relaxed);
        }
        counters
            .evaluations
            .fetch_add(report.evaluations as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Initiates an error close: count it, queue the error frame (unless the
    /// peer is already gone) and enter the draining state.
    fn fail_conn(&self, conn: &mut Conn, err: ServiceError, now: Instant) {
        self.server
            .counters()
            .failed
            .fetch_add(1, Ordering::Relaxed);
        self.close_with_error_frame(conn, err, now);
    }

    /// Initiates a panic close: count it separately, log it, answer with the
    /// `internal error` frame.
    fn panic_conn(&self, conn: &mut Conn, message: &str, now: Instant) {
        self.server
            .counters()
            .panicked
            .fetch_add(1, Ordering::Relaxed);
        let id = conn.id;
        eprintln!("eva-service: session {id} panicked: {message}");
        conn.queue_frames(&[encode_payload(&Message::Error(
            "internal error: the session worker crashed".into(),
        ))]);
        conn.result = Some(Err(ServiceError::Execution(format!(
            "session {id} panicked: {message}"
        ))));
        conn.closing = Some(self.closing_state(now, ERROR_DRAIN_WINDOW));
        conn.expires = None;
    }

    fn close_with_error_frame(&self, conn: &mut Conn, err: ServiceError, now: Instant) {
        // Error-frame-before-close: tell the peer what went wrong, except
        // when the error *is* that the peer is gone.
        let drain = match &err {
            ServiceError::Disconnected => Duration::ZERO,
            _ => {
                conn.queue_frames(&[encode_payload(&Message::Error(err.to_string()))]);
                ERROR_DRAIN_WINDOW
            }
        };
        conn.result = Some(Err(err));
        conn.closing = Some(self.closing_state(now, drain));
        conn.expires = None;
    }

    /// Feeds one session-machine step's outcome back into the connection.
    fn apply_step(
        &self,
        conn: &mut Conn,
        step: Result<Step, ServiceError>,
        scheduler: &Scheduler,
        now: Instant,
    ) {
        match step {
            Ok(Step::Continue) => conn.arm_deadline(now),
            Ok(Step::Reply(frames)) => {
                conn.queue_frames(&frames);
                conn.arm_deadline(now);
            }
            Ok(Step::Evaluate(job)) => {
                conn.evaluating = true;
                conn.expires = None;
                scheduler.submit(Job {
                    token: conn.token,
                    cost_us: job.cost_us,
                    peak_bytes: job.peak_bytes,
                    run: job.run,
                });
            }
            Ok(Step::Close(report)) => {
                conn.result = Some(self.record_completed(report));
                conn.closing = Some(Closing {
                    drain_until: now,
                    hard: now
                        + self
                            .server
                            .config()
                            .write_timeout
                            .unwrap_or(DEFAULT_CLOSE_CAP),
                });
                conn.expires = None;
            }
            Err(err) => self.fail_conn(conn, err, now),
        }
    }

    /// Routes a finished evaluation back into its session.
    fn handle_completion(
        &self,
        conn: &mut Conn,
        outcome: JobOutcome,
        scheduler: &Scheduler,
        now: Instant,
    ) {
        conn.evaluating = false;
        if conn.closing.is_some() {
            // The connection died while its job ran; nothing to deliver.
            return;
        }
        match outcome {
            JobOutcome::Done(result) => {
                let Some(machine) = conn.machine.as_mut() else {
                    return;
                };
                let step = match catch_unwind(AssertUnwindSafe(|| machine.on_job_done(result))) {
                    Ok(step) => step,
                    Err(payload) => {
                        let message = crate::server::panic_message(payload.as_ref());
                        self.panic_conn(conn, &message, now);
                        return;
                    }
                };
                self.apply_step(conn, step, scheduler, now);
            }
            JobOutcome::Panicked(message) => self.panic_conn(conn, &message, now),
        }
    }

    /// Advances one connection's protocol state: one pending frame per
    /// machine step, then the EOF transition once the peer is done sending.
    fn step_conn(&self, conn: &mut Conn, scheduler: &Scheduler, now: Instant) {
        while conn.closing.is_none() && !conn.evaluating {
            let Some(machine) = conn.machine.as_mut() else {
                return;
            };
            if let Some(frame) = conn.pending.pop_front() {
                let step = match catch_unwind(AssertUnwindSafe(|| machine.on_frame(frame))) {
                    Ok(step) => step,
                    Err(payload) => {
                        let message = crate::server::panic_message(payload.as_ref());
                        self.panic_conn(conn, &message, now);
                        return;
                    }
                };
                self.apply_step(conn, step, scheduler, now);
                continue;
            }
            if let Some(err) = conn.pending_error.take() {
                self.fail_conn(conn, err, now);
                return;
            }
            if conn.eof {
                // A clean EOF sits exactly between frames; anything else is
                // a mid-frame disconnect.
                let step = if conn.assembler.is_idle() {
                    machine.on_eof()
                } else {
                    Err(ServiceError::Disconnected)
                };
                self.apply_step(conn, step, scheduler, now);
            }
            return;
        }
    }

    /// Writes as much queued output as the socket accepts.
    fn flush_conn(&self, conn: &mut Conn, now: Instant) {
        while conn.has_output() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return,
                Ok(n) => {
                    conn.out_pos += n;
                    if conn.closing.is_none() {
                        // The server answered: fresh budget for the next
                        // message, exactly like the blocking DeadlineStream
                        // re-arming on write.
                        conn.arm_deadline(now);
                    }
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    // The peer is unreachable; no error frame can be
                    // delivered, so close immediately.
                    conn.out.clear();
                    conn.out_pos = 0;
                    if conn.closing.is_none() {
                        self.server
                            .counters()
                            .failed
                            .fetch_add(1, Ordering::Relaxed);
                        conn.result = Some(Err(ServiceError::Io(err)));
                    }
                    conn.closing = Some(Closing {
                        drain_until: now,
                        hard: now,
                    });
                    conn.expires = None;
                    return;
                }
            }
        }
        if conn.out_pos > 0 {
            conn.out.clear();
            conn.out_pos = 0;
        }
    }

    /// Fires the per-message deadline timer.
    fn check_timers(&self, conn: &mut Conn, now: Instant) {
        if conn.closing.is_some() || conn.evaluating {
            return;
        }
        if let (Some(expires), Some(budget)) = (conn.expires, conn.budget) {
            if now >= expires {
                let err = ServiceError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("deadline: no complete message within {budget:?}"),
                ));
                self.fail_conn(conn, err, now);
            }
        }
    }
}

/// Whether a closing connection is due to be dropped.
fn close_due(conn: &Conn, now: Instant) -> bool {
    let Some(closing) = &conn.closing else {
        return false;
    };
    if now >= closing.hard {
        return true;
    }
    !conn.has_output() && (conn.eof || now >= closing.drain_until)
}

fn drain_wake_pipe(wake_rx: &UnixStream) {
    let mut sink = [0u8; 256];
    loop {
        match (&*wake_rx).read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock: drained
        }
    }
}

/// Reads everything currently available on one connection into its frame
/// assembler (or discards it, when the connection is draining to close).
fn read_conn(conn: &mut Conn) {
    if conn.eof || (conn.evaluating && conn.closing.is_none()) {
        return;
    }
    let mut buf = [0u8; READ_CHUNK_BYTES];
    loop {
        let n = match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => n,
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => {
                if conn.closing.is_none() && conn.pending_error.is_none() {
                    conn.pending_error = Some(ServiceError::Io(err));
                }
                conn.eof = true;
                return;
            }
        };
        if conn.closing.is_some() || conn.pending_error.is_some() {
            continue; // draining: bytes are read so the close is a FIN
        }
        let Some(machine) = conn.machine.as_mut() else {
            continue;
        };
        let push = conn.assembler.push(
            &buf[..n],
            &mut |tag, len| machine.admit(tag, len),
            &mut conn.pending,
        );
        if let Err(err) = push {
            // Oversized frame or quota refusal: the step sweep turns this
            // into the error-frame-before-close path once the frames that
            // completed before it have been served.
            conn.pending_error = Some(err);
            return;
        }
    }
}

/// Reconciles the poller registration with what the connection needs now.
fn sync_interest(poller: &Poller, conn: &mut Conn, now: Instant) {
    let desired = conn.desired_interest(now);
    let fd = conn.stream.as_raw_fd();
    let applied = match (conn.registered, desired) {
        (None, Some(interest)) => poller.add(fd, conn.token, interest).is_ok(),
        (Some(current), Some(interest)) if current != interest => {
            poller.modify(fd, conn.token, interest).is_ok()
        }
        (Some(_), None) => {
            let _ = poller.delete(fd);
            true
        }
        _ => return,
    };
    if applied {
        conn.registered = desired;
    }
}
