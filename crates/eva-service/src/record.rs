//! A recording transport wrapper for audits and measurements.

use std::io::{Read, Result, Write};

/// Wraps any byte stream and records every byte sent and received, so tests
/// and examples can (a) measure wire traffic and (b) scan the captured bytes
/// for material that must never appear on the socket (secret keys).
#[derive(Debug)]
pub struct RecordingStream<S> {
    inner: S,
    sent: Vec<u8>,
    received: Vec<u8>,
}

impl<S> RecordingStream<S> {
    /// Wraps a stream.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            sent: Vec::new(),
            received: Vec::new(),
        }
    }

    /// Every byte written so far.
    pub fn sent(&self) -> &[u8] {
        &self.sent
    }

    /// Every byte read so far.
    pub fn received(&self) -> &[u8] {
        &self.received
    }

    /// Unwraps the inner stream, returning the captured traffic as
    /// `(sent, received)`.
    pub fn into_parts(self) -> (S, Vec<u8>, Vec<u8>) {
        (self.inner, self.sent, self.received)
    }
}

/// Returns true iff `needle` occurs contiguously anywhere in `haystack`
/// (used to scan captured traffic for secret-key bytes).
pub fn contains_bytes(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

impl<S: Read> Read for RecordingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.inner.read(buf)?;
        self.received.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

impl<S: Write> Write for RecordingStream<S> {
    fn write(&mut self, buf: &[u8]) -> Result<usize> {
        let n = self.inner.write(buf)?;
        self.sent.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_both_directions() {
        let mut stream = RecordingStream::new(std::io::Cursor::new(vec![9u8, 8, 7]));
        let mut buf = [0u8; 2];
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(stream.received(), &[9, 8]);
        stream.write_all(&[1, 2, 3]).unwrap();
        assert_eq!(stream.sent(), &[1, 2, 3]);
    }

    #[test]
    fn substring_scan() {
        assert!(contains_bytes(&[1, 2, 3, 4], &[2, 3]));
        assert!(!contains_bytes(&[1, 2, 3, 4], &[3, 2]));
        assert!(!contains_bytes(&[1, 2], &[]));
    }
}
