//! A retrying client session: bounded exponential backoff with
//! deterministic jitter, re-handshaking transparently through
//! [`SessionTicket`] resumption so a retried evaluation uploads **zero**
//! evaluation-key bytes.
//!
//! [`ReliableClient`] owns a *connector* (any `FnMut(attempt) -> transport`)
//! instead of a socket, so the same retry loop drives plain TCP, recorded
//! streams, and the chaos transport alike. On a transient failure
//! ([`ServiceError::is_transient`]) it drops the broken session, sleeps the
//! backoff, reconnects, and — when the first successful session minted a
//! ticket — resumes it, logging a `RETRY-RESUMED` event. Permanent errors
//! (verifier refusals, execution failures) surface immediately: retrying a
//! deterministic failure only burns the budget.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::time::Duration;

use crate::client::{EvaClient, SessionTicket};
use crate::error::ServiceError;

/// Bounded exponential backoff with deterministic jitter.
///
/// Delay before retry `i` (0-based) is `base_delay · 2^i`, capped at
/// `max_delay`, plus a jitter drawn uniformly from `[0, jitter]` by a
/// seeded splitmix64 — deterministic so chaos tests replay exactly, varied
/// per retry so a thundering herd still spreads out.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total connection attempts (the first try included). `1` disables
    /// retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub max_delay: Duration,
    /// Maximum extra jitter added to each backoff.
    pub jitter: Duration,
    /// Seed of the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(5),
            jitter: Duration::from_millis(50),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Sebastiano Vigna's splitmix64 — tiny, seedable, plenty for jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The delay to sleep before retry `retry` (0-based: the delay between
    /// the first failure and the second attempt is `backoff_delay(0)`).
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(retry))
            .min(self.max_delay);
        let jitter_nanos = self.jitter.as_nanos() as u64;
        if jitter_nanos == 0 {
            return exp;
        }
        // Each retry index gets its own deterministic draw.
        let mut state = self.seed ^ u64::from(retry).wrapping_mul(0xA076_1D64_78BD_642F);
        exp + Duration::from_nanos(splitmix64(&mut state) % (jitter_nanos + 1))
    }
}

/// Counters a [`ReliableClient`] accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Connection attempts made (successful handshakes and failures alike).
    pub attempts: u64,
    /// Evaluations that needed at least one retry.
    pub retried_evaluations: u64,
    /// Retry handshakes that resumed server-cached keys (zero key bytes).
    pub resumed_retries: u64,
}

/// A client session that survives transient failures by reconnecting with
/// backoff and resuming via [`SessionTicket`] (see the module docs).
///
/// `connect` is called with the 0-based attempt number and returns a fresh
/// transport; the client handshakes over it (resuming whenever it holds a
/// ticket) and re-runs the evaluation. The transport type is generic so
/// tests can hand back recorded or fault-injected streams.
pub struct ReliableClient<S, C> {
    connect: C,
    policy: RetryPolicy,
    key_seed: u64,
    /// Test-only: deterministic per-session encryption randomness, so chaos
    /// tests can assert bit-identity with the in-process executor. See
    /// [`EvaClient::handshake_deterministic`] for why real deployments must
    /// never set this.
    deterministic: bool,
    ticket: Option<SessionTicket>,
    session: Option<EvaClient<S>>,
    stats: RetryStats,
    events: Vec<String>,
}

impl<S, C> std::fmt::Debug for ReliableClient<S, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableClient")
            .field("policy", &self.policy)
            .field("connected", &self.session.is_some())
            .field("has_ticket", &self.ticket.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<S, C> ReliableClient<S, C>
where
    S: Read + Write,
    C: FnMut(u32) -> Result<S, ServiceError>,
{
    /// Builds a retrying client around a connector and a key seed (the seed
    /// is what makes sessions resumable — see [`SessionTicket`]). No
    /// connection happens until the first [`evaluate`](Self::evaluate).
    pub fn new(connect: C, key_seed: u64, policy: RetryPolicy) -> Self {
        Self {
            connect,
            policy,
            key_seed,
            deterministic: false,
            ticket: None,
            session: None,
            stats: RetryStats::default(),
            events: Vec::new(),
        }
    }

    /// Test-only: derive each session's encryption randomness from the key
    /// seed too, so evaluations are bit-identical to the in-process
    /// executor under the same seed. **Never use with real data** — see
    /// [`EvaClient::handshake_deterministic`].
    #[must_use]
    pub fn deterministic_for_tests(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// Seeds the client with a ticket from an earlier process/session, so
    /// even its *first* connection resumes (e.g. across a client restart).
    #[must_use]
    pub fn with_ticket(mut self, ticket: SessionTicket) -> Self {
        self.ticket = Some(ticket);
        self
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Human-readable event log (`RETRY-RESUMED`, backoff notes); chaos
    /// tests and the CI transcript grep read this.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// The current resumption ticket, if any session has minted one.
    pub fn ticket(&self) -> Option<SessionTicket> {
        self.ticket
    }

    /// Whether the **current** session resumed server-cached keys.
    pub fn resumed(&self) -> bool {
        self.session.as_ref().is_some_and(|s| s.resumed())
    }

    /// Drops the current session without a goodbye (simulating a client
    /// that lost its connection), keeping the ticket for resumption.
    pub fn disconnect(&mut self) {
        self.session = None;
    }

    /// Ensures a live session, handshaking (and resuming, given a ticket)
    /// over a fresh transport if needed. `attempt` is forwarded to the
    /// connector and used to mark retry resumptions.
    fn ensure_session(&mut self, attempt: u32) -> Result<(), ServiceError> {
        if self.session.is_some() {
            return Ok(());
        }
        self.stats.attempts += 1;
        let stream = (self.connect)(attempt)?;
        let client = match self.ticket {
            Some(ticket) if self.deterministic => {
                EvaClient::handshake_resuming_deterministic(stream, ticket)?
            }
            Some(ticket) => EvaClient::handshake_resuming(stream, ticket)?,
            None if self.deterministic => {
                EvaClient::handshake_deterministic(stream, self.key_seed)?
            }
            None => EvaClient::handshake(stream, Some(self.key_seed))?,
        };
        if let Some(ticket) = client.resumption_ticket() {
            self.ticket = Some(ticket);
        }
        if attempt > 0 && client.resumed() {
            self.stats.resumed_retries += 1;
            self.events.push("RETRY-RESUMED".to_string());
        }
        self.session = Some(client);
        Ok(())
    }

    /// Runs one evaluation round, retrying transient failures up to the
    /// policy's attempt budget with exponential backoff + jitter. Each
    /// retry reconnects from scratch and resumes via the ticket, so it
    /// re-uploads zero evaluation-key bytes.
    ///
    /// # Errors
    ///
    /// Returns the first permanent error immediately, or the last transient
    /// error once the attempt budget is exhausted.
    pub fn evaluate(
        &mut self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<HashMap<String, Vec<f64>>, ServiceError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            let result = self.ensure_session(attempt).and_then(|()| {
                self.session
                    .as_mut()
                    .expect("ensure_session leaves a session on success")
                    .evaluate(inputs)
            });
            match result {
                Ok(outputs) => {
                    if attempt > 0 {
                        self.stats.retried_evaluations += 1;
                    }
                    return Ok(outputs);
                }
                Err(err) => {
                    // The session is in an unknown protocol state: drop it.
                    self.session = None;
                    if !err.is_transient() || attempt + 1 >= max_attempts {
                        return Err(err);
                    }
                    let delay = self.policy.backoff_delay(attempt);
                    self.events
                        .push(format!("retry {} after {delay:?}: {err}", attempt + 1));
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }

    /// Ends the current session politely and returns its transport for
    /// inspection (e.g. a traffic audit of the *last* — retried — session).
    /// Returns `None` if no session is live.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if the goodbye cannot be sent.
    pub fn finish(mut self) -> Result<Option<S>, ServiceError> {
        match self.session.take() {
            Some(session) => session.finish().map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(450),
            jitter: Duration::ZERO,
            seed: 1,
        };
        assert_eq!(policy.backoff_delay(0), Duration::from_millis(100));
        assert_eq!(policy.backoff_delay(1), Duration::from_millis(200));
        assert_eq!(policy.backoff_delay(2), Duration::from_millis(400));
        assert_eq!(policy.backoff_delay(3), Duration::from_millis(450));
        assert_eq!(policy.backoff_delay(31), Duration::from_millis(450));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_varied() {
        let policy = RetryPolicy {
            jitter: Duration::from_millis(40),
            ..RetryPolicy::default()
        };
        let twin = policy.clone();
        let mut distinct = std::collections::HashSet::new();
        for retry in 0..16 {
            let delay = policy.backoff_delay(retry);
            assert_eq!(delay, twin.backoff_delay(retry), "same seed, same delay");
            let exp = policy
                .base_delay
                .saturating_mul(2u32.saturating_pow(retry))
                .min(policy.max_delay);
            assert!(delay >= exp && delay <= exp + policy.jitter);
            distinct.insert(delay - exp);
        }
        assert!(
            distinct.len() > 4,
            "jitter draws should vary across retries"
        );
    }
}
