//! The shared cross-session evaluation scheduler: a bounded pool of worker
//! threads draining one cost-ordered job queue.
//!
//! Under the reactor, sessions no longer own a thread, so their evaluations
//! meet in one place — this queue — and two analysis products from the
//! compiler decide what runs when:
//!
//! * **Cost-aware ordering** — jobs are ordered by the static cost model's
//!   `predicted_us` for their program (`eva_core::estimate_cost`), shortest
//!   predicted job first, FIFO among equals. One server serves one program,
//!   so today every job ties and the order degenerates to FIFO — but the
//!   queue is written against the prediction, not the program count, so a
//!   multi-program server (or per-request cost scaling) slots in without a
//!   scheduler change.
//! * **Memory-forecast admission** — `eva_core::predict_peak_memory`
//!   forecasts each job's peak simultaneously-live ciphertext bytes; a job
//!   is dispatched only while the sum of running forecasts stays within the
//!   server's memory budget. At least one job always runs (the load-time
//!   admission gate already refused any program whose *single* evaluation
//!   exceeds the budget), so the queue cannot deadlock.
//!
//! Workers run each job under `catch_unwind`: a panicking evaluation is
//! contained, reported as a panic outcome on the completion queue, and the
//! worker survives to take the next job.

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::ServiceError;
use crate::protocol::OutputValue;

/// The boxed evaluation closure a session hands to the scheduler: it runs
/// on a worker thread and yields the session's named output values.
pub(crate) type EvalRun =
    Box<dyn FnOnce() -> Result<Vec<(String, OutputValue)>, ServiceError> + Send>;

/// Live gauges the scheduler maintains and [`crate::ServerStats`] exposes.
/// Plain atomics: the reactor samples them on its hot path and session
/// submissions update them concurrently, so neither side may take a lock.
#[derive(Debug, Default)]
pub(crate) struct SchedGauges {
    /// Jobs queued and waiting for a worker.
    pub(crate) queue_depth: AtomicU64,
    /// Jobs currently being evaluated by a worker.
    pub(crate) jobs_inflight: AtomicU64,
}

/// What one evaluation job produced.
#[derive(Debug)]
pub(crate) enum JobOutcome {
    /// The evaluation ran to completion (successfully or with an error).
    Done(Result<Vec<(String, OutputValue)>, ServiceError>),
    /// The evaluation panicked; the payload is the rendered panic message.
    Panicked(String),
}

/// A finished job, keyed back to the connection that submitted it.
#[derive(Debug)]
pub(crate) struct Completion {
    /// The submitting connection's reactor token.
    pub(crate) token: u64,
    /// The job's outcome.
    pub(crate) outcome: JobOutcome,
}

/// One queued evaluation.
pub(crate) struct Job {
    /// The submitting connection's reactor token (echoed in the completion).
    pub(crate) token: u64,
    /// Predicted serial latency of this evaluation in microseconds
    /// (`CostReport::predicted_us`); the queue runs shortest-predicted-first.
    pub(crate) cost_us: f64,
    /// Forecast peak simultaneously-live bytes of this evaluation
    /// (`MemoryForecast::peak_bytes`); gates concurrent dispatch.
    pub(crate) peak_bytes: u64,
    /// The evaluation itself.
    pub(crate) run: EvalRun,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("token", &self.token)
            .field("cost_us", &self.cost_us)
            .field("peak_bytes", &self.peak_bytes)
            .finish()
    }
}

/// Heap entry: min-order by (predicted cost, submission sequence), so equal
/// costs preserve FIFO and no session starves behind a stream of peers.
struct QueuedJob {
    cost_us: f64,
    seq: u64,
    job: Job,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the cheapest job (and
        // among ties the oldest) on top. predicted_us is finite (a sum of
        // finite model weights), so total_cmp is a total order here.
        other
            .cost_us
            .total_cmp(&self.cost_us)
            .then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    seq: u64,
    /// Sum of `peak_bytes` over jobs currently running.
    inflight_bytes: u64,
    /// Jobs currently running.
    inflight_jobs: usize,
    shutting_down: bool,
}

struct SchedShared {
    queue: Mutex<QueueState>,
    /// Signals workers: a job arrived, memory freed up, or shutdown began.
    work: Condvar,
    completions: Mutex<VecDeque<Completion>>,
    gauges: Arc<SchedGauges>,
    /// Concurrent-evaluation memory budget (`None` = unbounded).
    memory_budget: Option<u64>,
    /// Set once any completion is queued, so the reactor can be woken.
    wake: Box<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for SchedShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedShared")
            .field("memory_budget", &self.memory_budget)
            .finish_non_exhaustive()
    }
}

/// The worker pool + queue handle owned by one reactor run. Dropping the
/// scheduler shuts the workers down after they finish their current jobs.
#[derive(Debug)]
pub(crate) struct Scheduler {
    shared: Arc<SchedShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    panicked_workers: Arc<AtomicBool>,
}

impl Scheduler {
    /// Spawns `workers` evaluation workers (at least one). `wake` is invoked
    /// after every completion is queued — the reactor passes a closure that
    /// writes one byte into its wake pipe.
    pub(crate) fn new(
        workers: usize,
        memory_budget: Option<u64>,
        gauges: Arc<SchedGauges>,
        wake: Box<dyn Fn() + Send + Sync>,
    ) -> Self {
        let shared = Arc::new(SchedShared {
            queue: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            completions: Mutex::new(VecDeque::new()),
            gauges,
            memory_budget,
            wake,
        });
        let panicked_workers = Arc::new(AtomicBool::new(false));
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers,
            panicked_workers,
        }
    }

    /// Queues one evaluation job.
    pub(crate) fn submit(&self, job: Job) {
        let mut queue = self.shared.queue.lock().expect("scheduler queue poisoned");
        queue.seq += 1;
        let entry = QueuedJob {
            cost_us: job.cost_us,
            seq: queue.seq,
            job,
        };
        queue.heap.push(entry);
        self.shared
            .gauges
            .queue_depth
            .store(queue.heap.len() as u64, Ordering::Relaxed);
        drop(queue);
        self.shared.work.notify_one();
    }

    /// Drains every completion queued since the last call.
    pub(crate) fn drain_completions(&self) -> Vec<Completion> {
        let mut completions = self
            .shared
            .completions
            .lock()
            .expect("completion queue poisoned");
        completions.drain(..).collect()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("scheduler queue poisoned");
            queue.shutting_down = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                // worker_loop contains job panics, so this is unreachable in
                // practice; record rather than propagate from a destructor.
                self.panicked_workers.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Whether the job at the top of the heap may start now: the concurrent
/// memory forecast must fit the budget, except that an idle pool always
/// admits one job (the load-time gate bounded single evaluations already).
fn admissible(state: &QueueState, job: &Job, budget: Option<u64>) -> bool {
    if state.inflight_jobs == 0 {
        return true;
    }
    match budget {
        Some(budget) => state
            .inflight_bytes
            .checked_add(job.peak_bytes)
            .is_some_and(|total| total <= budget),
        None => true,
    }
}

fn worker_loop(shared: &SchedShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("scheduler queue poisoned");
            loop {
                if queue.shutting_down && queue.heap.is_empty() {
                    return;
                }
                let admit = queue
                    .heap
                    .peek()
                    .is_some_and(|entry| admissible(&queue, &entry.job, shared.memory_budget));
                if admit {
                    let entry = queue.heap.pop().expect("peeked entry");
                    queue.inflight_jobs += 1;
                    queue.inflight_bytes =
                        queue.inflight_bytes.saturating_add(entry.job.peak_bytes);
                    shared
                        .gauges
                        .queue_depth
                        .store(queue.heap.len() as u64, Ordering::Relaxed);
                    shared
                        .gauges
                        .jobs_inflight
                        .store(queue.inflight_jobs as u64, Ordering::Relaxed);
                    break entry.job;
                }
                queue = shared.work.wait(queue).expect("scheduler queue poisoned");
            }
        };
        let token = job.token;
        let peak = job.peak_bytes;
        let run = job.run;
        let outcome = match catch_unwind(AssertUnwindSafe(run)) {
            Ok(result) => JobOutcome::Done(result),
            Err(payload) => JobOutcome::Panicked(crate::server::panic_message(payload.as_ref())),
        };
        {
            let mut queue = shared.queue.lock().expect("scheduler queue poisoned");
            queue.inflight_jobs -= 1;
            queue.inflight_bytes = queue.inflight_bytes.saturating_sub(peak);
            shared
                .gauges
                .jobs_inflight
                .store(queue.inflight_jobs as u64, Ordering::Relaxed);
        }
        // Freed memory may admit the next job on another worker.
        shared.work.notify_all();
        shared
            .completions
            .lock()
            .expect("completion queue poisoned")
            .push_back(Completion { token, outcome });
        (shared.wake)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn noop_wake() -> Box<dyn Fn() + Send + Sync> {
        Box::new(|| {})
    }

    fn job(token: u64, cost_us: f64, peak: u64) -> Job {
        Job {
            token,
            cost_us,
            peak_bytes: peak,
            run: Box::new(move || Ok(Vec::new())),
        }
    }

    fn wait_for_completions(sched: &Scheduler, n: usize) -> Vec<Completion> {
        let mut all = Vec::new();
        for _ in 0..500 {
            all.extend(sched.drain_completions());
            if all.len() >= n {
                return all;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("only {} of {n} completions arrived", all.len());
    }

    #[test]
    fn jobs_complete_and_are_keyed_by_token() {
        let sched = Scheduler::new(2, None, Arc::default(), noop_wake());
        for t in 0..8 {
            sched.submit(job(t, 1.0, 0));
        }
        let completions = wait_for_completions(&sched, 8);
        let mut tokens: Vec<u64> = completions.iter().map(|c| c.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn cheapest_job_runs_first_and_ties_stay_fifo() {
        // One worker, and the queue is pre-loaded while the worker is held
        // busy by a gate job — so dispatch order is purely the heap's.
        let order: Arc<Mutex<Vec<u64>>> = Arc::default();
        let gate: Arc<AtomicUsize> = Arc::default();
        let sched = Scheduler::new(1, None, Arc::default(), noop_wake());
        let gate_for_job = Arc::clone(&gate);
        sched.submit(Job {
            token: 99,
            cost_us: 0.0,
            peak_bytes: 0,
            run: Box::new(move || {
                while gate_for_job.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Vec::new())
            }),
        });
        let record = |t: u64, order: &Arc<Mutex<Vec<u64>>>| {
            let order = Arc::clone(order);
            Box::new(move || {
                order.lock().unwrap().push(t);
                Ok(Vec::new())
            })
        };
        // Submitted expensive-first; equal-cost pair (2, 3) in FIFO order.
        for (t, cost) in [(1u64, 500.0), (2, 10.0), (3, 10.0), (4, 1.0)] {
            sched.submit(Job {
                token: t,
                cost_us: cost,
                peak_bytes: 0,
                run: record(t, &order),
            });
        }
        gate.store(1, Ordering::SeqCst);
        wait_for_completions(&sched, 5);
        assert_eq!(*order.lock().unwrap(), vec![4, 2, 3, 1]);
    }

    #[test]
    fn memory_budget_bounds_concurrent_dispatch() {
        // Two workers, but each job forecasts 60 of a 100-byte budget: the
        // second job must wait for the first to finish.
        let inflight_peak: Arc<AtomicUsize> = Arc::default();
        let inflight_now: Arc<AtomicUsize> = Arc::default();
        let sched = Scheduler::new(2, Some(100), Arc::default(), noop_wake());
        for t in 0..4 {
            let peak = Arc::clone(&inflight_peak);
            let now = Arc::clone(&inflight_now);
            sched.submit(Job {
                token: t,
                cost_us: 1.0,
                peak_bytes: 60,
                run: Box::new(move || {
                    let live = now.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(10));
                    now.fetch_sub(1, Ordering::SeqCst);
                    Ok(Vec::new())
                }),
            });
        }
        wait_for_completions(&sched, 4);
        assert_eq!(
            inflight_peak.load(Ordering::SeqCst),
            1,
            "the 60+60 > 100 forecast must serialize dispatch"
        );
    }

    #[test]
    fn an_idle_pool_always_admits_one_job() {
        // A job whose forecast alone exceeds the budget still runs when
        // nothing else does (the load-time gate owns that refusal).
        let sched = Scheduler::new(2, Some(10), Arc::default(), noop_wake());
        sched.submit(job(1, 1.0, 1_000_000));
        let completions = wait_for_completions(&sched, 1);
        assert!(matches!(completions[0].outcome, JobOutcome::Done(Ok(_))));
    }

    #[test]
    fn panicking_jobs_are_contained_and_reported() {
        let sched = Scheduler::new(1, None, Arc::default(), noop_wake());
        sched.submit(Job {
            token: 5,
            cost_us: 1.0,
            peak_bytes: 0,
            run: Box::new(|| panic!("injected evaluation panic")),
        });
        // The worker survives to run the next job.
        sched.submit(job(6, 1.0, 0));
        let completions = wait_for_completions(&sched, 2);
        let panicked = completions.iter().find(|c| c.token == 5).unwrap();
        match &panicked.outcome {
            JobOutcome::Panicked(msg) => assert!(msg.contains("injected evaluation panic")),
            other => panic!("expected a panic outcome, got {other:?}"),
        }
        assert!(matches!(
            completions.iter().find(|c| c.token == 6).unwrap().outcome,
            JobOutcome::Done(Ok(_))
        ));
    }

    #[test]
    fn gauges_track_queue_depth_and_inflight() {
        let gauges: Arc<SchedGauges> = Arc::default();
        let gate: Arc<AtomicUsize> = Arc::default();
        let sched = Scheduler::new(1, None, Arc::clone(&gauges), noop_wake());
        let gate_for_job = Arc::clone(&gate);
        sched.submit(Job {
            token: 1,
            cost_us: 1.0,
            peak_bytes: 0,
            run: Box::new(move || {
                while gate_for_job.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Vec::new())
            }),
        });
        sched.submit(job(2, 1.0, 0));
        sched.submit(job(3, 1.0, 0));
        // One job running, two queued behind the single worker.
        for _ in 0..500 {
            if gauges.jobs_inflight.load(Ordering::Relaxed) == 1
                && gauges.queue_depth.load(Ordering::Relaxed) == 2
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(gauges.jobs_inflight.load(Ordering::Relaxed), 1);
        assert_eq!(gauges.queue_depth.load(Ordering::Relaxed), 2);
        gate.store(1, Ordering::SeqCst);
        wait_for_completions(&sched, 3);
        assert_eq!(gauges.jobs_inflight.load(Ordering::Relaxed), 0);
        assert_eq!(gauges.queue_depth.load(Ordering::Relaxed), 0);
    }
}
