//! The deployment server: loads one compiled EVA program and evaluates it
//! over ciphertexts for connecting clients.
//!
//! The server is the **untrusted** party of the paper's deployment split: it
//! holds the compiled circuit, the CKKS context derived from the compiler's
//! parameter spec, and — per session — the evaluation keys a client
//! uploaded. It never sees a secret key, a public encryption key or a
//! plaintext of any `Cipher` input; it executes the circuit with the shared
//! parallel executor and returns the still-encrypted outputs.
//!
//! Evaluation keys are additionally kept in a bounded LRU **key cache**
//! addressed by their content fingerprint (`eva_wire::fingerprint`): a
//! client reconnecting with the same keys names the fingerprint in its Hello
//! and skips the multi-megabyte upload entirely (session resumption). Cached
//! entries are shared across sessions behind `Arc`s, so a resumed session
//! costs neither the transfer nor a copy of the keys.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use eva_backend::{execute_parallel, parameters_from_spec, EvaluationContext};
use eva_ckks::{CkksContext, GaloisKeys, RelinearizationKey};
use eva_core::analysis::noise::{check_noise, NoiseModel};
use eva_core::analysis::verifier::{verify_compiled, VerifierReport};
use eva_core::serialize::compiled_from_bytes;
use eva_core::{estimate_cost, predict_peak_memory, CompiledProgram, CostModel};
use eva_wire::{fingerprint_eval_key_payload, KeyFingerprint, ProgramDiagnostics, WireDiagnostic};

use crate::error::ServiceError;
use crate::keystore::DiskKeyStore;
use crate::limits::{DeadlineStream, ServerConfig, SessionQuotas};
use crate::protocol::{
    decode_payload, expect_message, message_name, partition_inputs, read_frame_checked,
    write_message, Message, OutputValue, ProgramManifest, PROTOCOL_VERSION, TAG_EVAL_KEYS,
};
use crate::sched::SchedGauges;

/// Converts a verifier report into the wire payload a refused load carries:
/// error-severity findings only, each with its stable check name and node.
fn diagnostics_payload(program: &str, report: &VerifierReport) -> ProgramDiagnostics {
    ProgramDiagnostics {
        program: program.to_string(),
        diagnostics: report
            .errors()
            .map(|d| WireDiagnostic {
                check: d.check.name().to_string(),
                node: d.node.map(|n| n as u64),
                message: d.message.clone(),
            })
            .collect(),
    }
}

/// Statistics for one completed session.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Number of evaluation rounds served.
    pub evaluations: usize,
    /// Whether the session resumed cached evaluation keys (no key upload).
    pub resumed: bool,
    /// Content fingerprint of the session's evaluation keys (server-computed
    /// on upload, cache-resolved on resumption).
    pub key_fingerprint: Option<KeyFingerprint>,
}

/// One client's evaluation keys as held by the server, shared across
/// sessions through the key cache.
#[derive(Debug, Clone)]
pub(crate) struct SessionKeys {
    relin: Option<Arc<RelinearizationKey>>,
    galois: Arc<GaloisKeys>,
}

impl SessionKeys {
    /// Builds the per-session evaluation context around the server's shared
    /// CKKS context and these keys.
    pub(crate) fn into_evaluation_context(self, context: CkksContext) -> EvaluationContext {
        EvaluationContext::from_shared(context, self.relin, self.galois)
    }
}

#[derive(Debug)]
struct CacheEntry {
    stamp: u64,
    /// Wire size of the cached keys (what the entry cost to upload, and a
    /// faithful proxy for what it holds in memory).
    bytes: usize,
    keys: SessionKeys,
}

/// A bounded least-recently-used map from evaluation-key fingerprints to the
/// keys themselves, limited both by **entry count** and by a **byte budget**
/// — key sets are tens of megabytes each, and the protocol has no
/// authentication, so an unauthenticated peer must not be able to pin
/// unbounded server memory by uploading distinct valid key sets. Eviction
/// scans for the oldest stamp — O(capacity), negligible next to the
/// megabytes each entry saves in transfer.
#[derive(Debug)]
struct KeyCache {
    capacity: usize,
    max_bytes: usize,
    bytes: usize,
    clock: u64,
    entries: HashMap<[u8; 32], CacheEntry>,
}

impl KeyCache {
    fn new(capacity: usize, max_bytes: usize) -> Self {
        Self {
            capacity,
            max_bytes,
            bytes: 0,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, fingerprint: &KeyFingerprint) -> Option<SessionKeys> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(fingerprint.as_bytes()).map(|entry| {
            entry.stamp = clock;
            entry.keys.clone()
        })
    }

    fn insert(&mut self, fingerprint: KeyFingerprint, keys: SessionKeys, bytes: usize) {
        if self.capacity == 0 || bytes > self.max_bytes {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.entries.remove(fingerprint.as_bytes()) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.entries.insert(
            *fingerprint.as_bytes(),
            CacheEntry {
                stamp: self.clock,
                bytes,
                keys,
            },
        );
        // The new entry carries the newest stamp, so LRU eviction trims
        // older entries first and the insert always survives.
        self.enforce_bounds();
    }

    /// Evicts least-recently-used entries until both bounds hold (also run
    /// by the setters, so shrinking a bound purges immediately rather than
    /// on the next insert).
    fn enforce_bounds(&mut self) {
        while self.entries.len() > self.capacity || self.bytes > self.max_bytes {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            let evicted = self.entries.remove(&oldest).expect("key from iteration");
            self.bytes -= evicted.bytes;
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A server for one compiled EVA program.
///
/// The CKKS context (NTT tables, CRT composers) is built once from the
/// compiler's actual primes and shared across sessions; each session carries
/// only its client's evaluation keys, so concurrent sessions from different
/// clients — with different keys — are isolated from each other.
#[derive(Debug, Clone)]
pub struct EvaServer {
    inner: Arc<ServerInner>,
    /// Worker threads the parallel executor uses per evaluation.
    threads: usize,
}

#[derive(Debug)]
struct ServerInner {
    compiled: CompiledProgram,
    manifest: ProgramManifest,
    context: CkksContext,
    key_cache: Mutex<KeyCache>,
    /// Optional disk layer under the in-memory cache
    /// ([`EvaServer::with_key_store`]); `Arc` so lookups clone the handle
    /// out and do their I/O without holding the lock.
    key_store: Mutex<Option<Arc<DiskKeyStore>>>,
    config: Mutex<ServerConfig>,
    stats: StatCounters,
    session_ids: AtomicU64,
    /// Sessions currently being served — admission is a lock-free
    /// compare-exchange on this counter; `idle_lock`/`idle` exist only so
    /// [`EvaServer::wait_idle`] can sleep instead of spin.
    active: AtomicUsize,
    idle_lock: Mutex<()>,
    idle: Condvar,
    shutting_down: AtomicBool,
    /// Where the serving listener is bound, so [`EvaServer::begin_shutdown`]
    /// can wake a blocking `accept` with a throwaway connection.
    listener_addr: Mutex<Option<SocketAddr>>,
    /// `CostReport::predicted_us` for the loaded program (the scheduler's
    /// shortest-job-first key), computed once at load.
    cost_us: f64,
    /// `MemoryForecast::peak_bytes` for the loaded program (the scheduler's
    /// admission weight), computed once at load.
    peak_bytes: u64,
    /// The peak-memory budget concurrent evaluations are admitted under
    /// (`None` disables concurrency admission, like the load-time gate).
    memory_budget: Option<u64>,
    /// Live scheduler gauges (queue depth, jobs in flight), shared with
    /// whichever reactor run is currently serving.
    gauges: Arc<SchedGauges>,
}

/// Internal atomic counters behind [`ServerStats`].
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub(crate) started: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) panicked: AtomicU64,
    pub(crate) busy_rejected: AtomicU64,
    pub(crate) resumed: AtomicU64,
    pub(crate) disk_resumed: AtomicU64,
    pub(crate) evaluations: AtomicU64,
}

/// A point-in-time snapshot of the server's lifetime counters
/// ([`EvaServer::stats`]). Sessions are counted when they *end*, so
/// `sessions_started` can exceed the sum of the outcome counters while
/// sessions are in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions accepted and admitted (not counting busy rejections).
    pub sessions_started: u64,
    /// Sessions that ended cleanly (client said Bye or hung up between
    /// rounds).
    pub sessions_completed: u64,
    /// Sessions that ended in an error (protocol violation, deadline, quota,
    /// invalid keys, …). Panics are counted separately.
    pub sessions_failed: u64,
    /// Sessions whose worker **panicked**; the panic is caught, logged with
    /// the session id, and answered with a best-effort `Error` frame.
    pub session_panics: u64,
    /// Connections refused with a `busy:` error at the concurrency limit.
    pub busy_rejections: u64,
    /// Completed sessions that resumed cached evaluation keys.
    pub resumed_sessions: u64,
    /// Resumptions served from the **disk** store (a restart survivor, or an
    /// in-memory LRU eviction) rather than from memory.
    pub disk_resumptions: u64,
    /// Evaluation rounds served across all completed sessions.
    pub evaluations: u64,
    /// Evaluation jobs currently queued (admitted sessions whose `Inputs`
    /// round is waiting for a scheduler worker). Zero outside a reactor run.
    pub queue_depth: u64,
    /// Evaluation jobs currently executing on scheduler workers. Zero
    /// outside a reactor run.
    pub jobs_inflight: u64,
}

/// Decrements the active-session count (and wakes shutdown waiters) when a
/// session ends, however it ends — the guard pattern keeps the count honest
/// across error paths and caught panics alike.
#[derive(Debug)]
pub(crate) struct SessionGuard {
    inner: Arc<ServerInner>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.inner.active.fetch_sub(1, Ordering::SeqCst);
        // Taking the lock before notifying closes the race with a waiter
        // that observed a non-zero count and is about to sleep.
        drop(self.inner.idle_lock.lock().expect("idle lock poisoned"));
        self.inner.idle.notify_all();
    }
}

/// Default number of distinct evaluation-key sets the server caches for
/// session resumption (tune with [`EvaServer::with_key_cache_capacity`]).
pub const DEFAULT_KEY_CACHE_CAPACITY: usize = 32;

/// Default byte budget of the evaluation-key cache (1 GiB; tune with
/// [`EvaServer::with_key_cache_budget`]). Key sets are tens of megabytes
/// each and the socket is unauthenticated, so the cache is bounded in bytes
/// as well as entries.
pub const DEFAULT_KEY_CACHE_BUDGET_BYTES: usize = 1 << 30;

/// Default peak-memory admission budget per loaded program (4 GiB of
/// simultaneously-live ciphertext/plaintext bytes, as predicted by
/// `eva_core::predict_peak_memory`). Programs forecast to exceed the budget
/// are refused at load time with a `peak-memory` finding; tune with
/// [`EvaServer::new_with_memory_budget`].
pub const DEFAULT_MEMORY_BUDGET_BYTES: u64 = 4 << 30;

impl EvaServer {
    /// Builds a server around a compiled program, instantiating the CKKS
    /// context from the compiler's parameter spec (the actual primes, so the
    /// compiler's exact-scale annotations hold bit-for-bit at run time).
    ///
    /// The program is treated as **untrusted**: the full static verifier
    /// (`eva_core::analysis::verifier`) and the worst-case noise gate run
    /// first, and any finding refuses the program with
    /// [`ServiceError::InvalidProgram`] before any FHE state exists — a
    /// malformed `.evaprog` can never panic the server or reach a session.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidProgram`] if verification or the noise
    /// gate fails, and [`ServiceError::InvalidParameters`] if the spec cannot
    /// be instantiated.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use eva_core::{compile, CompilerOptions, Opcode, Program};
    /// use eva_service::EvaServer;
    ///
    /// let mut p = Program::new("square", 8);
    /// let x = p.input_cipher("x", 30);
    /// let sq = p.instruction(Opcode::Multiply, &[x, x]);
    /// p.output("out", sq, 30);
    /// let compiled = compile(&p, &CompilerOptions::default()).unwrap();
    ///
    /// let server = EvaServer::new(compiled).unwrap().with_threads(4);
    /// let listener = std::net::TcpListener::bind("127.0.0.1:7700").unwrap();
    /// server.serve_forever(&listener).unwrap();
    /// ```
    pub fn new(compiled: CompiledProgram) -> Result<Self, ServiceError> {
        Self::new_with_memory_budget(compiled, Some(DEFAULT_MEMORY_BUDGET_BYTES))
    }

    /// [`new`](Self::new) with an explicit peak-memory admission budget.
    ///
    /// `eva_core::predict_peak_memory` forecasts the serial executor's peak
    /// simultaneously-live bytes for the program; a forecast above
    /// `budget_bytes` refuses the program at load time with a `peak-memory`
    /// finding in the [`ServiceError::InvalidProgram`] diagnostics payload.
    /// `None` disables the admission check.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new), plus the budget refusal described above.
    pub fn new_with_memory_budget(
        compiled: CompiledProgram,
        budget_bytes: Option<u64>,
    ) -> Result<Self, ServiceError> {
        // The program is untrusted input (it usually arrives as a `.evaprog`
        // file): run the full static verifier and the worst-case noise gate
        // before building any FHE state, and refuse to serve on any finding.
        let report = verify_compiled(&compiled);
        if !report.is_clean() {
            return Err(ServiceError::InvalidProgram(diagnostics_payload(
                compiled.name(),
                &report,
            )));
        }
        if let Err(err) = check_noise(&compiled, &NoiseModel::default()) {
            return Err(ServiceError::InvalidProgram(ProgramDiagnostics {
                program: compiled.name().to_string(),
                diagnostics: vec![WireDiagnostic {
                    check: "noise-budget".to_string(),
                    node: None,
                    message: err.to_string(),
                }],
            }));
        }
        // The analysis products drive the scheduler at serve time: predicted
        // cost orders the shared job queue (shortest-job-first) and the peak
        // forecast weighs concurrent-evaluation admission.
        let forecast = predict_peak_memory(&compiled).map_err(|e| {
            ServiceError::InvalidProgram(ProgramDiagnostics {
                program: compiled.name().to_string(),
                diagnostics: vec![WireDiagnostic {
                    check: "peak-memory".to_string(),
                    node: None,
                    message: e.to_string(),
                }],
            })
        })?;
        let cost_us = estimate_cost(&compiled, &CostModel::default())
            .map(|report| report.predicted_us)
            .unwrap_or(0.0);
        if let Some(budget) = budget_bytes {
            // Admission control: refuse programs whose forecast peak memory
            // exceeds the configured budget, before any FHE state exists.
            if forecast.peak_bytes as u64 > budget {
                return Err(ServiceError::InvalidProgram(ProgramDiagnostics {
                    program: compiled.name().to_string(),
                    diagnostics: vec![WireDiagnostic {
                        check: "peak-memory".to_string(),
                        node: forecast.at_node.map(|n| n as u64),
                        message: format!(
                            "predicted peak of {} simultaneously-live bytes \
                             ({} ciphertexts) exceeds the admission budget of \
                             {budget} bytes",
                            forecast.peak_bytes, forecast.peak_live_ciphertexts
                        ),
                    }],
                }));
            }
        }
        let params = parameters_from_spec(&compiled.parameters)
            .map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;
        let context =
            CkksContext::new(params).map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;
        let manifest = ProgramManifest::from_compiled(&compiled);
        Ok(Self {
            inner: Arc::new(ServerInner {
                compiled,
                manifest,
                context,
                key_cache: Mutex::new(KeyCache::new(
                    DEFAULT_KEY_CACHE_CAPACITY,
                    DEFAULT_KEY_CACHE_BUDGET_BYTES,
                )),
                key_store: Mutex::new(None),
                config: Mutex::new(ServerConfig::default()),
                stats: StatCounters::default(),
                session_ids: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                idle_lock: Mutex::new(()),
                idle: Condvar::new(),
                shutting_down: AtomicBool::new(false),
                listener_addr: Mutex::new(None),
                cost_us,
                peak_bytes: forecast.peak_bytes as u64,
                memory_budget: budget_bytes,
                gauges: Arc::new(SchedGauges::default()),
            }),
            threads: 1,
        })
    }

    /// Loads a `.evaprog` compiled-program bundle from disk (the artifact
    /// `eva_core::serialize::compiled_to_bytes` writes).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on I/O, deserialization or parameter errors,
    /// and [`ServiceError::InvalidProgram`] if the bundle decodes but fails
    /// static verification (see [`EvaServer::new`]).
    pub fn from_program_file(path: impl AsRef<Path>) -> Result<Self, ServiceError> {
        let bytes = std::fs::read(path)?;
        let compiled = compiled_from_bytes(&bytes)?;
        Self::new(compiled)
    }

    /// Sets the number of executor worker threads used per evaluation.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the server's resource limits (deadlines, concurrency bound,
    /// per-session quotas — see [`ServerConfig`]). Sessions pick up the
    /// config when they start.
    #[must_use]
    pub fn with_config(self, config: ServerConfig) -> Self {
        *self.inner.config.lock().expect("config lock poisoned") = config;
        self
    }

    /// The server's current resource limits.
    pub fn config(&self) -> ServerConfig {
        self.inner
            .config
            .lock()
            .expect("config lock poisoned")
            .clone()
    }

    /// Layers a [`DiskKeyStore`] under the in-memory key cache, rooted at
    /// `dir` (created if needed): uploaded evaluation keys are persisted
    /// there (content-addressed, atomic write-rename), and resumption
    /// lookups that miss the in-memory LRU fall back to disk — so warm,
    /// zero-upload resumption survives server restarts. Disk entries are
    /// never trusted: the fingerprint is re-verified over the bytes read
    /// back, and the keys re-validated, before anything is served.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if the store directory cannot be
    /// created.
    pub fn with_key_store(self, dir: impl Into<std::path::PathBuf>) -> Result<Self, ServiceError> {
        let store = DiskKeyStore::open(dir)?;
        *self
            .inner
            .key_store
            .lock()
            .expect("key store lock poisoned") = Some(Arc::new(store));
        Ok(self)
    }

    /// The disk key store, if one is configured.
    pub fn key_store(&self) -> Option<Arc<DiskKeyStore>> {
        self.inner
            .key_store
            .lock()
            .expect("key store lock poisoned")
            .clone()
    }

    /// A point-in-time snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        let stats = &self.inner.stats;
        ServerStats {
            sessions_started: stats.started.load(Ordering::Relaxed),
            sessions_completed: stats.completed.load(Ordering::Relaxed),
            sessions_failed: stats.failed.load(Ordering::Relaxed),
            session_panics: stats.panicked.load(Ordering::Relaxed),
            busy_rejections: stats.busy_rejected.load(Ordering::Relaxed),
            resumed_sessions: stats.resumed.load(Ordering::Relaxed),
            disk_resumptions: stats.disk_resumed.load(Ordering::Relaxed),
            evaluations: stats.evaluations.load(Ordering::Relaxed),
            queue_depth: self.inner.gauges.queue_depth.load(Ordering::Relaxed),
            jobs_inflight: self.inner.gauges.jobs_inflight.load(Ordering::Relaxed),
        }
    }

    /// Flags the server as shutting down and wakes a [`EvaServer::serve_forever`]
    /// loop blocked in `accept` (with a throwaway self-connection), without
    /// waiting for in-flight sessions. Pair with [`EvaServer::wait_idle`],
    /// or call [`EvaServer::shutdown`] for both.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        let addr = *self
            .inner
            .listener_addr
            .lock()
            .expect("listener addr lock poisoned");
        if let Some(addr) = addr {
            // Failure just means accept wasn't blocking (or already woke).
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Blocks until no session is being served (the drain half of graceful
    /// shutdown — in-flight evaluations run to completion, they are never
    /// aborted).
    pub fn wait_idle(&self) {
        let mut guard = self.inner.idle_lock.lock().expect("idle lock poisoned");
        while self.inner.active.load(Ordering::SeqCst) > 0 {
            guard = self.inner.idle.wait(guard).expect("idle lock poisoned");
        }
    }

    /// Graceful shutdown: [`EvaServer::begin_shutdown`] then
    /// [`EvaServer::wait_idle`]. After this returns, a
    /// [`EvaServer::serve_forever`] loop on this server has stopped
    /// accepting and every in-flight evaluation has drained.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        self.wait_idle();
    }

    /// Whether [`EvaServer::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Admits a new session under the concurrency limit, returning the
    /// guard that releases the slot, or `None` at capacity. Lock-free: a
    /// compare-exchange loop on the active-session counter.
    pub(crate) fn try_begin_session(&self) -> Option<SessionGuard> {
        let max = self.config().max_sessions.max(1);
        let mut current = self.inner.active.load(Ordering::SeqCst);
        loop {
            if current >= max {
                return None;
            }
            match self.inner.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(SessionGuard {
                        inner: Arc::clone(&self.inner),
                    })
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// The wire message a connection rejected at the concurrency limit gets
    /// (the bare `busy:`-prefixed text the client's transient-error
    /// classifier keys on), shared by both transports.
    pub(crate) fn busy_message(&self) -> String {
        format!(
            "busy: server is at its {}-session limit; retry with backoff",
            self.config().max_sessions.max(1)
        )
    }

    /// Politely rejects a connection at the concurrency limit: a `busy:`
    /// protocol `Error` frame (so a retrying client backs off instead of
    /// guessing), then close. Returns the error for the session's result
    /// slot.
    fn reject_busy(&self, mut stream: TcpStream) -> ServiceError {
        self.inner
            .stats
            .busy_rejected
            .fetch_add(1, Ordering::Relaxed);
        let message = self.busy_message();
        stream.set_write_timeout(self.config().write_timeout).ok();
        let _ = write_message(&mut stream, &Message::Error(message.clone()));
        // The rejected client has a Hello in flight we never read; see
        // `drain_before_close` for why closing on top of it would race the
        // Error frame away.
        drain_before_close(&stream);
        ServiceError::Protocol(message)
    }

    pub(crate) fn next_session_id(&self) -> u64 {
        self.inner.session_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Publishes where the serving listener is bound so
    /// [`EvaServer::begin_shutdown`] can wake it with a self-connection.
    pub(crate) fn set_listener_addr(&self, addr: Option<SocketAddr>) {
        *self
            .inner
            .listener_addr
            .lock()
            .expect("listener addr lock poisoned") = addr;
    }

    /// The raw lifetime counters, for transports that account sessions
    /// themselves (the reactor counts admissions and outcomes directly).
    pub(crate) fn counters(&self) -> &StatCounters {
        &self.inner.stats
    }

    /// The scheduler gauges surfaced through [`ServerStats`].
    pub(crate) fn sched_gauges(&self) -> Arc<SchedGauges> {
        Arc::clone(&self.inner.gauges)
    }

    /// A clone of the shared CKKS context (cheap: the context is internally
    /// reference-counted).
    pub(crate) fn shared_context(&self) -> CkksContext {
        self.inner.context.clone()
    }

    /// The server's CKKS context.
    pub(crate) fn context(&self) -> &CkksContext {
        &self.inner.context
    }

    /// Executor worker threads used per evaluation.
    pub(crate) fn executor_threads(&self) -> usize {
        self.threads
    }

    /// The loaded program's predicted serial cost in microseconds (the
    /// scheduler's shortest-job-first key).
    pub(crate) fn job_cost_us(&self) -> f64 {
        self.inner.cost_us
    }

    /// The loaded program's forecast peak simultaneously-live bytes (the
    /// scheduler's admission weight).
    pub(crate) fn job_peak_bytes(&self) -> u64 {
        self.inner.peak_bytes
    }

    /// The peak-memory budget concurrent evaluations are admitted under.
    pub(crate) fn memory_budget(&self) -> Option<u64> {
        self.inner.memory_budget
    }

    /// Sets how many distinct evaluation-key sets the resumption cache holds
    /// (default [`DEFAULT_KEY_CACHE_CAPACITY`]); `0` disables caching, so
    /// every session must upload its keys. Shrinking below the current
    /// population evicts immediately (least-recently-used first).
    #[must_use]
    pub fn with_key_cache_capacity(self, capacity: usize) -> Self {
        let mut cache = self
            .inner
            .key_cache
            .lock()
            .expect("key cache lock poisoned");
        cache.capacity = capacity;
        cache.enforce_bounds();
        drop(cache);
        self
    }

    /// Sets the resumption cache's total byte budget (default
    /// [`DEFAULT_KEY_CACHE_BUDGET_BYTES`]). Entries are evicted
    /// least-recently-used until both the entry and the byte bound hold —
    /// immediately on shrink, and on every insert; a key set larger than
    /// the whole budget is simply not cached.
    #[must_use]
    pub fn with_key_cache_budget(self, max_bytes: usize) -> Self {
        let mut cache = self
            .inner
            .key_cache
            .lock()
            .expect("key cache lock poisoned");
        cache.max_bytes = max_bytes;
        cache.enforce_bounds();
        drop(cache);
        self
    }

    /// Number of evaluation-key sets currently cached for resumption.
    pub fn cached_key_sets(&self) -> usize {
        self.inner
            .key_cache
            .lock()
            .expect("key cache lock poisoned")
            .len()
    }

    /// Total wire bytes of the evaluation-key sets currently cached.
    pub fn cached_key_bytes(&self) -> usize {
        self.inner
            .key_cache
            .lock()
            .expect("key cache lock poisoned")
            .bytes
    }

    /// The manifest published to clients.
    pub fn manifest(&self) -> &ProgramManifest {
        &self.inner.manifest
    }

    /// The compiled program being served.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.inner.compiled
    }

    /// Accepts exactly `sessions` connections from `listener` and serves
    /// them **concurrently** on the event-driven reactor: one IO thread
    /// multiplexes every connection and a bounded worker pool runs the
    /// evaluations, ordered shortest-job-first and admitted under the
    /// peak-memory budget. Returns the per-session reports in accept order
    /// once every session has ended; per-session failures — including
    /// `busy:` rejections at the concurrency limit — are reported in the
    /// result slots rather than aborting the other sessions.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if the listener or the reactor's poller
    /// fails.
    pub fn serve_sessions(
        &self,
        listener: &TcpListener,
        sessions: usize,
    ) -> Result<Vec<Result<SessionReport, ServiceError>>, ServiceError> {
        crate::reactor::Reactor::new(self.clone())?.serve_sessions(listener, sessions)
    }

    /// [`serve_sessions`](Self::serve_sessions) on the legacy blocking
    /// transport: one OS thread per session, evaluations inline on the
    /// session thread. Kept as the baseline the reactor is benchmarked
    /// against (`eva-bench report --throughput`).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if accepting a connection fails.
    pub fn serve_sessions_blocking(
        &self,
        listener: &TcpListener,
        sessions: usize,
    ) -> Result<Vec<Result<SessionReport, ServiceError>>, ServiceError> {
        *self
            .inner
            .listener_addr
            .lock()
            .expect("listener addr lock poisoned") = listener.local_addr().ok();
        // Each accepted connection fills one result slot: either a scoped
        // session thread to join, or an immediate busy rejection.
        enum Slot<'scope> {
            Running(std::thread::ScopedJoinHandle<'scope, Result<SessionReport, ServiceError>>),
            Rejected(ServiceError),
        }
        let mut results = Vec::with_capacity(sessions);
        std::thread::scope(|scope| -> Result<(), ServiceError> {
            let mut slots = Vec::with_capacity(sessions);
            for _ in 0..sessions {
                let (stream, _addr) = listener.accept()?;
                match self.try_begin_session() {
                    Some(guard) => {
                        let server = self.clone();
                        let id = self.next_session_id();
                        slots.push(Slot::Running(scope.spawn(move || {
                            let _guard = guard;
                            server.run_session_tcp(stream, id)
                        })));
                    }
                    None => slots.push(Slot::Rejected(self.reject_busy(stream))),
                }
            }
            for slot in slots {
                results.push(match slot {
                    Slot::Running(handle) => handle.join().unwrap_or_else(|_| {
                        Err(ServiceError::Protocol("session thread panicked".into()))
                    }),
                    Slot::Rejected(err) => Err(err),
                });
            }
            Ok(())
        })?;
        Ok(results)
    }

    /// Serves connections until [`EvaServer::begin_shutdown`] (or
    /// [`EvaServer::shutdown`]) is called, multiplexing every session on the
    /// event-driven reactor with evaluations on a bounded worker pool,
    /// honoring the concurrency limit with `busy:` rejections. On shutdown
    /// the accept loop stops and in-flight sessions are **drained** —
    /// evaluations run to completion — before this returns.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the listener or the reactor's
    /// poller fails.
    pub fn serve_forever(&self, listener: &TcpListener) -> Result<(), ServiceError> {
        crate::reactor::Reactor::new(self.clone())?.serve_forever(listener)
    }

    /// [`serve_forever`](Self::serve_forever) on the legacy blocking
    /// transport: one OS thread per session, evaluations inline. Kept as the
    /// baseline the reactor is benchmarked against.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the listener fails.
    pub fn serve_forever_blocking(&self, listener: &TcpListener) -> Result<(), ServiceError> {
        *self
            .inner
            .listener_addr
            .lock()
            .expect("listener addr lock poisoned") = listener.local_addr().ok();
        loop {
            let (stream, addr) = listener.accept()?;
            if self.is_shutting_down() {
                // The connection may be begin_shutdown's own wake-up, or a
                // late real client; either way, stop accepting.
                drop(stream);
                break;
            }
            match self.try_begin_session() {
                Some(guard) => {
                    let server = self.clone();
                    let id = self.next_session_id();
                    std::thread::spawn(move || {
                        let _guard = guard;
                        if let Err(err) = server.run_session_tcp(stream, id) {
                            eprintln!("eva-service: session {id} from {addr} failed: {err}");
                        }
                    });
                }
                None => {
                    self.reject_busy(stream);
                }
            }
        }
        self.wait_idle();
        Ok(())
    }

    /// One accepted TCP session: socket options, the read-deadline wrapper,
    /// then the panic-guarded session body.
    fn run_session_tcp(&self, stream: TcpStream, id: u64) -> Result<SessionReport, ServiceError> {
        stream.set_nodelay(true).ok();
        let config = self.config();
        stream.set_write_timeout(config.write_timeout).ok();
        let mut stream = DeadlineStream::new(stream, config.read_deadline);
        let result = self.run_guarded(&mut stream, id);
        if result.is_err() {
            // The error-frame-before-close rule needs one more step on TCP:
            // closing a socket with unread peer data in the receive buffer
            // makes the kernel send RST, which can destroy the just-sent
            // Error frame before the peer reads it. Drain what's in flight
            // (time-bounded — this must not reopen the slowloris hole) so
            // the close is a FIN and the Error frame survives.
            drain_before_close(stream.get_ref());
        }
        result
    }

    /// Runs one session with panic containment: a panicking session worker
    /// is caught (never silently unwinding a detached thread), logged with
    /// its session id, counted in [`ServerStats::session_panics`], and
    /// answered with a best-effort `internal error` frame. Outcome counters
    /// are updated here for every path.
    fn run_guarded<S: std::io::Read + std::io::Write>(
        &self,
        stream: &mut S,
        id: u64,
    ) -> Result<SessionReport, ServiceError> {
        let stats = &self.inner.stats;
        stats.started.fetch_add(1, Ordering::Relaxed);
        // AssertUnwindSafe: on panic both the stream (closed right after the
        // error frame) and the server state are discarded or re-validated —
        // the key cache and counters are behind locks/atomics and every
        // cached entry was validated before insertion.
        match catch_unwind(AssertUnwindSafe(|| self.handle_session(stream))) {
            Ok(Ok(report)) => {
                stats.completed.fetch_add(1, Ordering::Relaxed);
                if report.resumed {
                    stats.resumed.fetch_add(1, Ordering::Relaxed);
                }
                stats
                    .evaluations
                    .fetch_add(report.evaluations as u64, Ordering::Relaxed);
                Ok(report)
            }
            Ok(Err(err)) => {
                stats.failed.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
            Err(payload) => {
                stats.panicked.fetch_add(1, Ordering::Relaxed);
                let message = panic_message(payload.as_ref());
                eprintln!("eva-service: session {id} panicked: {message}");
                // Error-frame-before-close, even for a crash: the client
                // learns the request died instead of staring at a dead
                // socket. `internal error` marks it transient for retries.
                let _ = write_message(
                    stream,
                    &Message::Error("internal error: the session worker crashed".into()),
                );
                Err(ServiceError::Execution(format!(
                    "session {id} panicked: {message}"
                )))
            }
        }
    }

    /// Runs one full session over any bidirectional byte stream (exposed so
    /// tests and benchmarks can use in-memory or instrumented transports).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on protocol violations, invalid key material
    /// or execution failures; a best-effort `Error` message is sent to the
    /// client first (the error-frame-before-close rule — oversized frames,
    /// tripped deadlines and exhausted quotas all reach the peer as a named
    /// `Error`, never as a bare hang-up).
    pub fn handle_session<S: std::io::Read + std::io::Write>(
        &self,
        stream: &mut S,
    ) -> Result<SessionReport, ServiceError> {
        match self.session_inner(stream) {
            Ok(report) => Ok(report),
            Err(err) => {
                // Tell the client what went wrong before giving up on the
                // session; the socket may already be gone, so ignore failures.
                let _ = write_message(stream, &Message::Error(err.to_string()));
                Err(err)
            }
        }
    }

    fn session_inner<S: std::io::Read + std::io::Write>(
        &self,
        stream: &mut S,
    ) -> Result<SessionReport, ServiceError> {
        let inner = &*self.inner;
        let mut quotas = SessionQuotas::new(&self.config());
        // 1. Hello / version check; the Hello may name an evaluation-key
        //    fingerprint to resume.
        let resume = match expect_message(stream)? {
            Message::Hello { protocol, resume } if protocol == PROTOCOL_VERSION => resume,
            Message::Hello { protocol, .. } => {
                return Err(ServiceError::Protocol(format!(
                    "client speaks protocol {protocol}, server speaks {PROTOCOL_VERSION}"
                )))
            }
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Hello, got {}",
                    message_name(&other)
                )))
            }
        };
        // 2. Key lookup (memory LRU, then the disk store), then publish the
        //    manifest together with the resumption verdict.
        let cached = resume.and_then(|fingerprint| {
            self.lookup_keys(&fingerprint)
                .map(|keys| (fingerprint, keys))
        });
        write_message(
            stream,
            &Message::Manifest {
                manifest: Box::new(inner.manifest.clone()),
                keys_cached: cached.is_some(),
            },
        )?;
        // 3. Evaluation keys: from the cache on resumption (already validated
        //    when first uploaded), otherwise uploaded now, validated,
        //    fingerprinted and cached for future sessions.
        let mut report = SessionReport::default();
        let keys = match cached {
            Some((fingerprint, keys)) => {
                report.resumed = true;
                report.key_fingerprint = Some(fingerprint);
                keys
            }
            None => {
                // Read the raw frame so the fingerprint can be computed over
                // the payload *as received* — the bytes are already in hand,
                // so no multi-megabyte re-serialization of the keys happens
                // (decoders only accept canonical encodings, so hashing the
                // payload equals hashing the decoded keys).
                let (tag, payload) = read_frame_checked(stream, |tag, len| quotas.admit(tag, len))?
                    .ok_or(ServiceError::Disconnected)?;
                if tag != TAG_EVAL_KEYS {
                    let message = decode_payload(tag, &payload)?;
                    return Err(ServiceError::Protocol(format!(
                        "expected EvalKeys, got {}",
                        message_name(&message)
                    )));
                }
                let fingerprint = fingerprint_eval_key_payload(&payload);
                let keys = self.accept_key_upload(&payload, fingerprint)?;
                report.key_fingerprint = Some(fingerprint);
                keys
            }
        };
        let eval = EvaluationContext::from_shared(inner.context.clone(), keys.relin, keys.galois);
        // 4. Evaluation rounds until the client says Bye (or cleanly hangs up).
        loop {
            let message = match read_frame_checked(stream, |tag, len| quotas.admit(tag, len))? {
                Some((tag, payload)) => Some(decode_payload(tag, &payload)?),
                None => None,
            };
            match message {
                Some(Message::Inputs(inputs)) => {
                    let (ciphers, plains) = partition_inputs(inputs, &inner.context)?;
                    let bindings = eval.bind_inputs(&inner.compiled, ciphers, plains)?;
                    let values = execute_parallel(&eval, &inner.compiled, bindings, self.threads)?;
                    let outputs = EvaluationContext::named_outputs(&inner.compiled, &values)?
                        .into_iter()
                        .map(|(name, value)| (name, OutputValue::from(value)))
                        .collect();
                    write_message(stream, &Message::Outputs(outputs))?;
                    report.evaluations += 1;
                }
                Some(Message::Bye) | None => return Ok(report),
                Some(other) => {
                    return Err(ServiceError::Protocol(format!(
                        "expected Inputs or Bye, got {}",
                        message_name(&other)
                    )))
                }
            }
        }
    }

    /// Accepts one uploaded evaluation-key payload: decodes it, validates
    /// the keys against the server context and manifest, caches them under
    /// `fingerprint` (computed by the transport over the payload **as
    /// received** — streaming for the reactor, one-shot for the blocking
    /// path; both digests are byte-identical) and persists them through the
    /// disk layer if one is configured. Shared by both transports.
    pub(crate) fn accept_key_upload(
        &self,
        payload: &[u8],
        fingerprint: KeyFingerprint,
    ) -> Result<SessionKeys, ServiceError> {
        debug_assert_eq!(
            fingerprint,
            fingerprint_eval_key_payload(payload),
            "transport-computed fingerprint must match the one-shot digest"
        );
        let (relin, galois) = match decode_payload(TAG_EVAL_KEYS, payload)? {
            Message::EvalKeys { relin, galois } => (relin.map(|k| *k), *galois),
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected EvalKeys, got {}",
                    message_name(&other)
                )))
            }
        };
        self.validate_eval_keys(relin.as_ref(), &galois)?;
        let keys = SessionKeys {
            relin: relin.map(Arc::new),
            galois: Arc::new(galois),
        };
        self.inner
            .key_cache
            .lock()
            .expect("key cache lock poisoned")
            .insert(fingerprint, keys.clone(), payload.len());
        // Persist through to the disk layer (if configured) so the
        // resumption outlives this process. Persistence failure is an
        // operational warning, never a session error.
        if let Some(store) = self.key_store() {
            if let Err(err) = store.store(&fingerprint, payload) {
                eprintln!(
                    "eva-service: failed to persist evaluation keys to {}: {err}",
                    store.root().display()
                );
            }
        }
        Ok(keys)
    }

    /// Resolves a resumption fingerprint: the in-memory LRU first, then the
    /// disk store (if configured). A disk hit is **re-verified** end to end —
    /// the store checks the fingerprint over the bytes read back, and the
    /// decoded keys pass the same [`validate_eval_keys`](Self::validate_eval_keys)
    /// gate as a fresh upload — then promoted into the memory cache. An
    /// entry that decodes but fails validation (e.g. a store directory
    /// shared with a server of different parameters) is ignored without
    /// being evicted; corrupt bytes were already deleted by the store.
    pub(crate) fn lookup_keys(&self, fingerprint: &KeyFingerprint) -> Option<SessionKeys> {
        if let Some(keys) = self
            .inner
            .key_cache
            .lock()
            .expect("key cache lock poisoned")
            .get(fingerprint)
        {
            return Some(keys);
        }
        let payload = self.key_store()?.load(fingerprint)?;
        let keys = match decode_payload(TAG_EVAL_KEYS, &payload) {
            Ok(Message::EvalKeys { relin, galois }) => {
                let relin = relin.map(|k| *k);
                let galois = *galois;
                self.validate_eval_keys(relin.as_ref(), &galois)
                    .ok()
                    .map(|()| SessionKeys {
                        relin: relin.map(Arc::new),
                        galois: Arc::new(galois),
                    })
            }
            _ => None,
        }?;
        self.inner
            .stats
            .disk_resumed
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .key_cache
            .lock()
            .expect("key cache lock poisoned")
            .insert(*fingerprint, keys.clone(), payload.len());
        Some(keys)
    }

    /// Validates uploaded evaluation keys against the server context and the
    /// published manifest before any of them touches the evaluator.
    fn validate_eval_keys(
        &self,
        relin: Option<&RelinearizationKey>,
        galois: &GaloisKeys,
    ) -> Result<(), ServiceError> {
        let inner = &*self.inner;
        let degree = inner.context.degree();
        let key_level = inner.context.key_basis().len();
        let digit_count = inner.context.max_level();
        let check_ksk = |what: &str, key: &eva_ckks::KeySwitchKey| {
            if key.digits().len() != digit_count {
                return Err(ServiceError::InvalidParameters(format!(
                    "{what} has {} digits, expected {digit_count}",
                    key.digits().len()
                )));
            }
            for (k0, k1) in key.digits() {
                for poly in [k0, k1] {
                    if poly.degree() != degree || poly.level() != key_level {
                        return Err(ServiceError::InvalidParameters(format!(
                            "{what} polynomial has shape ({}, {}), expected ({degree}, {key_level})",
                            poly.degree(),
                            poly.level()
                        )));
                    }
                }
            }
            Ok(())
        };
        if inner.manifest.needs_relin {
            let relin = relin.ok_or_else(|| {
                ServiceError::InvalidParameters(
                    "the program relinearizes but no relinearization key was uploaded".into(),
                )
            })?;
            check_ksk("relinearization key", relin.key_switch_key())?;
        }
        for step in &inner.manifest.rotation_steps {
            if !galois.supports_step(*step) {
                return Err(ServiceError::InvalidParameters(format!(
                    "no Galois key for rotation step {step}"
                )));
            }
        }
        for (elt, key) in galois.element_keys() {
            if elt % 2 != 1 || elt >= 2 * degree as u64 {
                return Err(ServiceError::InvalidParameters(format!(
                    "Galois element {elt} is not an odd unit modulo 2N"
                )));
            }
            check_ksk("Galois key", key)?;
        }
        Ok(())
    }
}

/// Reads and discards whatever the peer still has in flight, bounded in
/// time, before an errored session's socket is closed.
///
/// Closing a TCP socket with unread data in its receive buffer makes the
/// kernel answer with RST instead of FIN — and an RST discards data the
/// peer has not read yet, including the `Error` frame we just queued. The
/// protocol promises an `Error` frame *before* any abnormal close, so the
/// close must be a FIN: consume the stragglers first. The hard time bound
/// keeps a trickling peer from turning this courtesy into a slowloris hold.
fn drain_before_close(stream: &TcpStream) {
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 4096];
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() || stream.set_read_timeout(Some(remaining)).is_err() {
            return;
        }
        match std::io::Read::read(&mut (&*stream), &mut sink) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

/// Best-effort rendering of a caught panic payload (panics carry `&str` or
/// `String` in practice; anything else is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_keys() -> SessionKeys {
        SessionKeys {
            relin: None,
            galois: Arc::new(GaloisKeys::default()),
        }
    }

    fn fp(byte: u8) -> KeyFingerprint {
        KeyFingerprint([byte; 32])
    }

    #[test]
    fn key_cache_evicts_least_recently_used_by_count() {
        let mut cache = KeyCache::new(2, usize::MAX);
        cache.insert(fp(1), dummy_keys(), 10);
        cache.insert(fp(2), dummy_keys(), 10);
        // Touch 1 so 2 becomes the oldest.
        assert!(cache.get(&fp(1)).is_some());
        cache.insert(fp(3), dummy_keys(), 10);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&fp(1)).is_some());
        assert!(cache.get(&fp(2)).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&fp(3)).is_some());
    }

    #[test]
    fn key_cache_enforces_the_byte_budget() {
        let mut cache = KeyCache::new(100, 100);
        cache.insert(fp(1), dummy_keys(), 40);
        cache.insert(fp(2), dummy_keys(), 40);
        assert_eq!(cache.bytes, 80);
        // 40 more bytes exceed the budget: the oldest entry goes.
        cache.insert(fp(3), dummy_keys(), 40);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes, 80);
        assert!(cache.get(&fp(1)).is_none());
        // An entry larger than the whole budget is not cached at all.
        cache.insert(fp(4), dummy_keys(), 1000);
        assert!(cache.get(&fp(4)).is_none());
        assert_eq!(cache.bytes, 80);
        // Re-inserting an existing fingerprint replaces, not duplicates.
        cache.insert(fp(2), dummy_keys(), 60);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes, 100);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = KeyCache::new(0, usize::MAX);
        cache.insert(fp(1), dummy_keys(), 1);
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&fp(1)).is_none());
    }

    /// A transport whose reads panic — the worst a hostile-input bug can do
    /// to a session worker — while recording whatever the server writes.
    struct PanickingStream {
        written: Vec<u8>,
    }

    impl std::io::Read for PanickingStream {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            panic!("injected panic for the containment test");
        }
    }

    impl std::io::Write for PanickingStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn session_panics_are_caught_counted_and_answered() {
        use eva_core::{compile, CompilerOptions, Opcode, Program};

        let mut p = Program::new("square", 8);
        let x = p.input_cipher("x", 30);
        let sq = p.instruction(Opcode::Multiply, &[x, x]);
        p.output("out", sq, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        let server = EvaServer::new(compiled).unwrap();

        let mut stream = PanickingStream {
            written: Vec::new(),
        };
        let err = server.run_guarded(&mut stream, 42).unwrap_err();
        let rendered = err.to_string();
        assert!(
            rendered.contains("session 42 panicked"),
            "panic must surface with its session id: {rendered}"
        );
        assert!(
            rendered.contains("injected panic"),
            "panic message must be preserved: {rendered}"
        );
        let stats = server.stats();
        assert_eq!(stats.sessions_started, 1);
        assert_eq!(stats.session_panics, 1);
        assert_eq!(stats.sessions_failed, 0, "panics are counted separately");
        // Error-frame-before-close holds even for a crash.
        assert!(crate::record::contains_bytes(
            &stream.written,
            b"internal error"
        ));
        // The error is marked transient so a retrying client reconnects.
        assert!(
            ServiceError::Remote("internal error: the session worker crashed".into())
                .is_transient()
        );
    }

    #[test]
    fn over_budget_programs_are_refused_with_a_peak_memory_finding() {
        use eva_core::{compile, CompilerOptions, Opcode, Program};

        let mut p = Program::new("square", 8);
        let x = p.input_cipher("x", 30);
        let sq = p.instruction(Opcode::Multiply, &[x, x]);
        p.output("out", sq, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();

        // The default budget admits this tiny program...
        assert!(EvaServer::new(compiled.clone()).is_ok());
        // ...an impossible budget refuses it, naming the check.
        let err = EvaServer::new_with_memory_budget(compiled.clone(), Some(1)).unwrap_err();
        match err {
            ServiceError::InvalidProgram(payload) => {
                assert_eq!(payload.program, "square");
                assert_eq!(payload.diagnostics.len(), 1);
                let d = &payload.diagnostics[0];
                assert_eq!(d.check, "peak-memory");
                assert!(
                    d.message.contains("admission budget"),
                    "unexpected message: {}",
                    d.message
                );
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
        // `None` disables admission entirely.
        assert!(EvaServer::new_with_memory_budget(compiled, None).is_ok());
    }

    #[test]
    fn shrinking_bounds_evicts_immediately() {
        // Entries cached before a capacity/budget shrink must not keep
        // serving resumptions (with_key_cache_* calls enforce_bounds).
        let mut cache = KeyCache::new(4, usize::MAX);
        for i in 1..=4 {
            cache.insert(fp(i), dummy_keys(), 10);
        }
        cache.max_bytes = 20;
        cache.enforce_bounds();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes, 20);
        cache.capacity = 0;
        cache.enforce_bounds();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes, 0);
        assert!(cache.get(&fp(4)).is_none());
    }
}
