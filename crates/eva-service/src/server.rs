//! The deployment server: loads one compiled EVA program and evaluates it
//! over ciphertexts for connecting clients.
//!
//! The server is the **untrusted** party of the paper's deployment split: it
//! holds the compiled circuit, the CKKS context derived from the compiler's
//! parameter spec, and — per session — the evaluation keys a client
//! uploaded. It never sees a secret key, a public encryption key or a
//! plaintext of any `Cipher` input; it executes the circuit with the shared
//! parallel executor and returns the still-encrypted outputs.

use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;

use eva_backend::{execute_parallel, parameters_from_spec, EvaluationContext};
use eva_ckks::{CkksContext, GaloisKeys, RelinearizationKey};
use eva_core::serialize::compiled_from_bytes;
use eva_core::CompiledProgram;

use crate::error::ServiceError;
use crate::protocol::{
    expect_message, partition_inputs, write_message, Message, OutputValue, ProgramManifest,
    PROTOCOL_VERSION,
};

/// Statistics for one completed session.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Number of evaluation rounds served.
    pub evaluations: usize,
}

/// A server for one compiled EVA program.
///
/// The CKKS context (NTT tables, CRT composers) is built once from the
/// compiler's actual primes and shared across sessions; each session carries
/// only its client's evaluation keys, so concurrent sessions from different
/// clients — with different keys — are isolated from each other.
#[derive(Debug, Clone)]
pub struct EvaServer {
    inner: Arc<ServerInner>,
    /// Worker threads the parallel executor uses per evaluation.
    threads: usize,
}

#[derive(Debug)]
struct ServerInner {
    compiled: CompiledProgram,
    manifest: ProgramManifest,
    context: CkksContext,
}

impl EvaServer {
    /// Builds a server around a compiled program, instantiating the CKKS
    /// context from the compiler's parameter spec (the actual primes, so the
    /// compiler's exact-scale annotations hold bit-for-bit at run time).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidParameters`] if the spec cannot be
    /// instantiated.
    pub fn new(compiled: CompiledProgram) -> Result<Self, ServiceError> {
        let params = parameters_from_spec(&compiled.parameters)
            .map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;
        let context =
            CkksContext::new(params).map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;
        let manifest = ProgramManifest::from_compiled(&compiled);
        Ok(Self {
            inner: Arc::new(ServerInner {
                compiled,
                manifest,
                context,
            }),
            threads: 1,
        })
    }

    /// Loads a `.evaprog` compiled-program bundle from disk (the artifact
    /// `eva_core::serialize::compiled_to_bytes` writes).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on I/O, deserialization or parameter errors.
    pub fn from_program_file(path: impl AsRef<Path>) -> Result<Self, ServiceError> {
        let bytes = std::fs::read(path)?;
        let compiled = compiled_from_bytes(&bytes)?;
        Self::new(compiled)
    }

    /// Sets the number of executor worker threads used per evaluation.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The manifest published to clients.
    pub fn manifest(&self) -> &ProgramManifest {
        &self.inner.manifest
    }

    /// The compiled program being served.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.inner.compiled
    }

    /// Accepts exactly `sessions` connections from `listener` and serves each
    /// in its own thread (sessions run **concurrently**; a slow client does
    /// not block the next accept). Returns the per-session reports in accept
    /// order once every session has ended; per-session failures are reported
    /// in the result slots rather than aborting the other sessions.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if accepting a connection fails.
    pub fn serve_sessions(
        &self,
        listener: &TcpListener,
        sessions: usize,
    ) -> Result<Vec<Result<SessionReport, ServiceError>>, ServiceError> {
        let mut results = Vec::with_capacity(sessions);
        std::thread::scope(|scope| -> Result<(), ServiceError> {
            let mut handles = Vec::with_capacity(sessions);
            for _ in 0..sessions {
                let (stream, _addr) = listener.accept()?;
                let server = self.clone();
                handles.push(scope.spawn(move || server.handle_session_tcp(stream)));
            }
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|_| {
                    Err(ServiceError::Protocol("session thread panicked".into()))
                }));
            }
            Ok(())
        })?;
        Ok(results)
    }

    /// Serves connections forever, one thread per session. Only returns on
    /// accept errors.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] when the listener fails.
    pub fn serve_forever(&self, listener: &TcpListener) -> Result<(), ServiceError> {
        loop {
            let (stream, addr) = listener.accept()?;
            let server = self.clone();
            std::thread::spawn(move || {
                if let Err(err) = server.handle_session_tcp(stream) {
                    eprintln!("eva-service: session from {addr} failed: {err}");
                }
            });
        }
    }

    fn handle_session_tcp(&self, mut stream: TcpStream) -> Result<SessionReport, ServiceError> {
        stream.set_nodelay(true).ok();
        self.handle_session(&mut stream)
    }

    /// Runs one full session over any bidirectional byte stream (exposed so
    /// tests and benchmarks can use in-memory or instrumented transports).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on protocol violations, invalid key material
    /// or execution failures; a best-effort `Error` message is sent to the
    /// client first.
    pub fn handle_session<S: std::io::Read + std::io::Write>(
        &self,
        stream: &mut S,
    ) -> Result<SessionReport, ServiceError> {
        match self.session_inner(stream) {
            Ok(report) => Ok(report),
            Err(err) => {
                // Tell the client what went wrong before giving up on the
                // session; the socket may already be gone, so ignore failures.
                let _ = write_message(stream, &Message::Error(err.to_string()));
                Err(err)
            }
        }
    }

    fn session_inner<S: std::io::Read + std::io::Write>(
        &self,
        stream: &mut S,
    ) -> Result<SessionReport, ServiceError> {
        let inner = &*self.inner;
        // 1. Hello / version check.
        match expect_message(stream)? {
            Message::Hello { protocol } if protocol == PROTOCOL_VERSION => {}
            Message::Hello { protocol } => {
                return Err(ServiceError::Protocol(format!(
                    "client speaks protocol {protocol}, server speaks {PROTOCOL_VERSION}"
                )))
            }
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Hello, got {}",
                    message_name(&other)
                )))
            }
        }
        // 2. Publish the program manifest.
        write_message(stream, &Message::Manifest(Box::new(inner.manifest.clone())))?;
        // 3. Evaluation-key upload.
        let (relin, galois) = match expect_message(stream)? {
            Message::EvalKeys { relin, galois } => (relin.map(|k| *k), *galois),
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected EvalKeys, got {}",
                    message_name(&other)
                )))
            }
        };
        self.validate_eval_keys(relin.as_ref(), &galois)?;
        let eval = EvaluationContext::from_parts(inner.context.clone(), relin, galois);
        // 4. Evaluation rounds until the client says Bye (or cleanly hangs up).
        let mut report = SessionReport::default();
        loop {
            match crate::protocol::read_message(stream)? {
                Some(Message::Inputs(inputs)) => {
                    let (ciphers, plains) = partition_inputs(inputs)?;
                    let bindings = eval.bind_inputs(&inner.compiled, ciphers, plains)?;
                    let values = execute_parallel(&eval, &inner.compiled, bindings, self.threads)?;
                    let outputs = EvaluationContext::named_outputs(&inner.compiled, &values)?
                        .into_iter()
                        .map(|(name, value)| (name, OutputValue::from(value)))
                        .collect();
                    write_message(stream, &Message::Outputs(outputs))?;
                    report.evaluations += 1;
                }
                Some(Message::Bye) | None => return Ok(report),
                Some(other) => {
                    return Err(ServiceError::Protocol(format!(
                        "expected Inputs or Bye, got {}",
                        message_name(&other)
                    )))
                }
            }
        }
    }

    /// Validates uploaded evaluation keys against the server context and the
    /// published manifest before any of them touches the evaluator.
    fn validate_eval_keys(
        &self,
        relin: Option<&RelinearizationKey>,
        galois: &GaloisKeys,
    ) -> Result<(), ServiceError> {
        let inner = &*self.inner;
        let degree = inner.context.degree();
        let key_level = inner.context.key_basis().len();
        let digit_count = inner.context.max_level();
        let check_ksk = |what: &str, key: &eva_ckks::KeySwitchKey| {
            if key.digits().len() != digit_count {
                return Err(ServiceError::InvalidParameters(format!(
                    "{what} has {} digits, expected {digit_count}",
                    key.digits().len()
                )));
            }
            for (k0, k1) in key.digits() {
                for poly in [k0, k1] {
                    if poly.degree() != degree || poly.level() != key_level {
                        return Err(ServiceError::InvalidParameters(format!(
                            "{what} polynomial has shape ({}, {}), expected ({degree}, {key_level})",
                            poly.degree(),
                            poly.level()
                        )));
                    }
                }
            }
            Ok(())
        };
        if inner.manifest.needs_relin {
            let relin = relin.ok_or_else(|| {
                ServiceError::InvalidParameters(
                    "the program relinearizes but no relinearization key was uploaded".into(),
                )
            })?;
            check_ksk("relinearization key", relin.key_switch_key())?;
        }
        for step in &inner.manifest.rotation_steps {
            if !galois.supports_step(*step) {
                return Err(ServiceError::InvalidParameters(format!(
                    "no Galois key for rotation step {step}"
                )));
            }
        }
        for (elt, key) in galois.element_keys() {
            if elt % 2 != 1 || elt >= 2 * degree as u64 {
                return Err(ServiceError::InvalidParameters(format!(
                    "Galois element {elt} is not an odd unit modulo 2N"
                )));
            }
            check_ksk("Galois key", key)?;
        }
        Ok(())
    }
}

fn message_name(message: &Message) -> &'static str {
    match message {
        Message::Hello { .. } => "Hello",
        Message::Manifest(_) => "Manifest",
        Message::EvalKeys { .. } => "EvalKeys",
        Message::Inputs(_) => "Inputs",
        Message::Outputs(_) => "Outputs",
        Message::Error(_) => "Error",
        Message::Bye => "Bye",
    }
}
