//! The frame-driven session core shared by the reactor and the blocking
//! transport: a chunked [`FrameAssembler`] that turns arbitrary byte slices
//! into protocol frames, and a [`SessionMachine`] that advances one session
//! per completed frame instead of per blocking read.
//!
//! The state machine is the blocking `handle_session` loop unrolled into
//! explicit protocol steps — Hello → Manifest, EvalKeys (unless resumed),
//! then Inputs/Outputs rounds until Bye — with identical message ordering,
//! validation and error strings, so the PR 7 `limits`/`persistence`/`chaos`
//! suites hold against either transport. The one structural difference: an
//! `Inputs` frame does not evaluate inline but yields an [`EvalJob`] for the
//! shared scheduler, and the session resumes when the job's completion comes
//! back.

use std::collections::VecDeque;
use std::sync::Arc;

use eva_backend::{execute_parallel, EvaluationContext};
use eva_wire::{EvalKeyPayloadHasher, KeyFingerprint};

use crate::error::ServiceError;
use crate::limits::SessionQuotas;
use crate::protocol::{
    decode_payload, encode_payload, message_name, partition_inputs, Message, OutputValue,
    MAX_FRAME_BYTES, PROTOCOL_VERSION, TAG_EVAL_KEYS,
};
use crate::server::{EvaServer, SessionReport};

/// Payload bytes are accumulated (and reserved) in steps of this size, so a
/// frame header announcing gigabytes costs at most one such step of memory
/// until the peer actually delivers the bytes.
pub(crate) const PAYLOAD_RESERVE_CHUNK: usize = 1 << 20;

/// One completed protocol frame.
#[derive(Debug)]
pub(crate) struct Frame {
    /// The frame's tag byte.
    pub(crate) tag: u8,
    /// The frame's payload.
    pub(crate) payload: Vec<u8>,
    /// For [`TAG_EVAL_KEYS`] frames: the content fingerprint of the payload,
    /// computed incrementally while the chunks arrived (byte-identical to
    /// `fingerprint_eval_key_payload` over the whole payload).
    pub(crate) eval_key_fingerprint: Option<KeyFingerprint>,
}

/// Incremental frame parser: feed it received byte slices in any sizes and
/// it emits completed frames. Admission checks — the `MAX_FRAME_BYTES` cap
/// and the caller's quota callback — run against the **announced** header
/// before the first payload chunk is accepted, and payload memory grows in
/// [`PAYLOAD_RESERVE_CHUNK`] steps as bytes actually arrive, never as one
/// up-front allocation of the announced size.
#[derive(Debug, Default)]
pub(crate) struct FrameAssembler {
    header: [u8; 9],
    header_filled: usize,
    in_payload: bool,
    announced: u64,
    payload: Vec<u8>,
    hasher: Option<EvalKeyPayloadHasher>,
}

impl FrameAssembler {
    /// A fresh assembler, between frames.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Whether the assembler sits exactly between frames (no partial header
    /// or payload buffered) — an EOF here is a clean close, an EOF anywhere
    /// else is a mid-frame disconnect.
    pub(crate) fn is_idle(&self) -> bool {
        self.header_filled == 0 && !self.in_payload
    }

    /// Upper bound on bytes the current frame still needs — what a blocking
    /// reader may safely request without consuming bytes of the *next*
    /// frame. Never zero: between frames the next header needs 9 bytes.
    pub(crate) fn bytes_wanted(&self) -> u64 {
        if self.in_payload {
            self.announced - self.payload.len() as u64
        } else {
            (self.header.len() - self.header_filled) as u64
        }
    }

    /// Consumes `bytes`, appending completed frames to `out`. `admit` is
    /// called once per frame with the announced `(tag, len)` header.
    pub(crate) fn push(
        &mut self,
        mut bytes: &[u8],
        admit: &mut dyn FnMut(u8, u64) -> Result<(), ServiceError>,
        out: &mut VecDeque<Frame>,
    ) -> Result<(), ServiceError> {
        while !bytes.is_empty() {
            if !self.in_payload {
                let take = bytes.len().min(self.header.len() - self.header_filled);
                self.header[self.header_filled..self.header_filled + take]
                    .copy_from_slice(&bytes[..take]);
                self.header_filled += take;
                bytes = &bytes[take..];
                if self.header_filled < self.header.len() {
                    return Ok(());
                }
                let tag = self.header[0];
                let len = u64::from_le_bytes(self.header[1..9].try_into().expect("8 length bytes"));
                if len > MAX_FRAME_BYTES {
                    return Err(ServiceError::Protocol(format!(
                        "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                    )));
                }
                admit(tag, len)?;
                self.in_payload = true;
                self.announced = len;
                self.payload = Vec::new();
                self.hasher = (tag == TAG_EVAL_KEYS).then(EvalKeyPayloadHasher::new);
            }
            let remaining = self.announced - self.payload.len() as u64;
            let take = (bytes.len() as u64).min(remaining) as usize;
            if take > 0 {
                let chunk = &bytes[..take];
                bytes = &bytes[take..];
                // Grow in bounded steps toward the announced size; a lying
                // header cannot reserve more than one step ahead of the
                // bytes that actually arrived.
                let needed = self.payload.len() + take;
                if self.payload.capacity() < needed {
                    let target = needed.max(
                        (self.payload.len() + PAYLOAD_RESERVE_CHUNK).min(self.announced as usize),
                    );
                    self.payload.reserve_exact(target - self.payload.len());
                }
                self.payload.extend_from_slice(chunk);
                if let Some(hasher) = &mut self.hasher {
                    hasher.update(chunk);
                }
            }
            if self.payload.len() as u64 == self.announced {
                out.push_back(Frame {
                    tag: self.header[0],
                    payload: std::mem::take(&mut self.payload),
                    eval_key_fingerprint: self.hasher.take().map(EvalKeyPayloadHasher::finalize),
                });
                self.header_filled = 0;
                self.in_payload = false;
            }
        }
        Ok(())
    }
}

/// One queued evaluation produced by a session's `Inputs` frame, annotated
/// with the analysis products the scheduler orders and admits by.
pub(crate) struct EvalJob {
    /// `CostReport::predicted_us` for the program (shortest-job-first key).
    pub(crate) cost_us: f64,
    /// `MemoryForecast::peak_bytes` for the program (admission weight).
    pub(crate) peak_bytes: u64,
    /// The evaluation closure (runs on a scheduler worker).
    pub(crate) run: crate::sched::EvalRun,
}

impl std::fmt::Debug for EvalJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalJob")
            .field("cost_us", &self.cost_us)
            .field("peak_bytes", &self.peak_bytes)
            .finish()
    }
}

/// What one protocol step asks the transport to do next.
#[derive(Debug)]
pub(crate) enum Step {
    /// Nothing to send; keep reading frames.
    Continue,
    /// Queue these encoded frames for the peer, then keep reading.
    Reply(Vec<(u8, Vec<u8>)>),
    /// Submit this job to the evaluation scheduler and **pause reading**
    /// until its completion comes back (one in-flight evaluation per
    /// session, exactly like the blocking loop).
    Evaluate(EvalJob),
    /// The session ended cleanly (Bye, or EOF between rounds).
    Close(SessionReport),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitHello,
    AwaitEvalKeys,
    AwaitInputs,
    Evaluating,
    Done,
}

/// The per-connection protocol state machine.
#[derive(Debug)]
pub(crate) struct SessionMachine {
    server: EvaServer,
    quotas: SessionQuotas,
    report: SessionReport,
    phase: Phase,
    eval: Option<Arc<EvaluationContext>>,
}

impl SessionMachine {
    /// A fresh machine awaiting the client's Hello. Quotas snapshot the
    /// server config at session start, exactly like the blocking path.
    pub(crate) fn new(server: EvaServer) -> Self {
        let quotas = SessionQuotas::new(&server.config());
        Self {
            server,
            quotas,
            report: SessionReport::default(),
            phase: Phase::AwaitHello,
            eval: None,
        }
    }

    /// Admission check for one announced frame header (threaded into the
    /// [`FrameAssembler`] by the transport).
    pub(crate) fn admit(&mut self, tag: u8, len: u64) -> Result<(), ServiceError> {
        self.quotas.admit(tag, len)
    }

    /// Advances the protocol by one completed frame.
    pub(crate) fn on_frame(&mut self, frame: Frame) -> Result<Step, ServiceError> {
        match self.phase {
            Phase::AwaitHello => self.on_hello(frame),
            Phase::AwaitEvalKeys => self.on_eval_keys(frame),
            Phase::AwaitInputs => self.on_inputs(frame),
            Phase::Evaluating | Phase::Done => Err(ServiceError::Protocol(format!(
                "unexpected frame (tag {}) while no message was awaited",
                frame.tag
            ))),
        }
    }

    /// Handles end-of-stream from the peer: a clean close between rounds,
    /// a mid-handshake disconnect anywhere else.
    pub(crate) fn on_eof(&mut self) -> Result<Step, ServiceError> {
        match self.phase {
            Phase::AwaitInputs => {
                self.phase = Phase::Done;
                Ok(Step::Close(self.report.clone()))
            }
            _ => Err(ServiceError::Disconnected),
        }
    }

    /// Resumes the session with the outcome of its in-flight evaluation.
    pub(crate) fn on_job_done(
        &mut self,
        outcome: Result<Vec<(String, OutputValue)>, ServiceError>,
    ) -> Result<Step, ServiceError> {
        debug_assert_eq!(self.phase, Phase::Evaluating);
        let outputs = outcome?;
        self.report.evaluations += 1;
        self.phase = Phase::AwaitInputs;
        Ok(Step::Reply(vec![encode_payload(&Message::Outputs(
            outputs,
        ))]))
    }

    fn on_hello(&mut self, frame: Frame) -> Result<Step, ServiceError> {
        let resume = match decode_payload(frame.tag, &frame.payload)? {
            Message::Hello { protocol, resume } if protocol == PROTOCOL_VERSION => resume,
            Message::Hello { protocol, .. } => {
                return Err(ServiceError::Protocol(format!(
                    "client speaks protocol {protocol}, server speaks {PROTOCOL_VERSION}"
                )))
            }
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Hello, got {}",
                    message_name(&other)
                )))
            }
        };
        let cached = resume.and_then(|fingerprint| {
            self.server
                .lookup_keys(&fingerprint)
                .map(|keys| (fingerprint, keys))
        });
        let manifest = Message::Manifest {
            manifest: Box::new(self.server.manifest().clone()),
            keys_cached: cached.is_some(),
        };
        match cached {
            Some((fingerprint, keys)) => {
                self.report.resumed = true;
                self.report.key_fingerprint = Some(fingerprint);
                self.eval = Some(Arc::new(
                    keys.into_evaluation_context(self.server.shared_context()),
                ));
                self.phase = Phase::AwaitInputs;
            }
            None => self.phase = Phase::AwaitEvalKeys,
        }
        Ok(Step::Reply(vec![encode_payload(&manifest)]))
    }

    fn on_eval_keys(&mut self, frame: Frame) -> Result<Step, ServiceError> {
        if frame.tag != TAG_EVAL_KEYS {
            let message = decode_payload(frame.tag, &frame.payload)?;
            return Err(ServiceError::Protocol(format!(
                "expected EvalKeys, got {}",
                message_name(&message)
            )));
        }
        let fingerprint = frame
            .eval_key_fingerprint
            .expect("assembler fingerprints every EvalKeys frame");
        let keys = self.server.accept_key_upload(&frame.payload, fingerprint)?;
        self.report.key_fingerprint = Some(fingerprint);
        self.eval = Some(Arc::new(
            keys.into_evaluation_context(self.server.shared_context()),
        ));
        self.phase = Phase::AwaitInputs;
        Ok(Step::Continue)
    }

    fn on_inputs(&mut self, frame: Frame) -> Result<Step, ServiceError> {
        let inputs = match decode_payload(frame.tag, &frame.payload)? {
            Message::Inputs(inputs) => inputs,
            Message::Bye => {
                self.phase = Phase::Done;
                return Ok(Step::Close(self.report.clone()));
            }
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Inputs or Bye, got {}",
                    message_name(&other)
                )))
            }
        };
        let eval = Arc::clone(self.eval.as_ref().expect("keys precede inputs"));
        let (ciphers, plains) = partition_inputs(inputs, self.server.context())?;
        let bindings = eval.bind_inputs(self.server.compiled(), ciphers, plains)?;
        let server = self.server.clone();
        let threads = self.server.executor_threads();
        self.phase = Phase::Evaluating;
        Ok(Step::Evaluate(EvalJob {
            cost_us: self.server.job_cost_us(),
            peak_bytes: self.server.job_peak_bytes(),
            run: Box::new(move || {
                let values = execute_parallel(&eval, server.compiled(), bindings, threads)?;
                let outputs = EvaluationContext::named_outputs(server.compiled(), &values)?
                    .into_iter()
                    .map(|(name, value)| (name, OutputValue::from(value)))
                    .collect();
                Ok(outputs)
            }),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_wire::fingerprint_eval_key_payload;

    fn frame_bytes(tag: u8, payload: &[u8]) -> Vec<u8> {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    fn push_all(asm: &mut FrameAssembler, bytes: &[u8]) -> Result<VecDeque<Frame>, ServiceError> {
        let mut out = VecDeque::new();
        asm.push(bytes, &mut |_, _| Ok(()), &mut out)?;
        Ok(out)
    }

    #[test]
    fn frames_assemble_across_arbitrary_chunk_boundaries() {
        let mut wire = frame_bytes(4, b"hello");
        wire.extend_from_slice(&frame_bytes(7, b""));
        wire.extend_from_slice(&frame_bytes(3, &[9u8; 100]));
        // Feed the whole stream one byte at a time: every boundary is hit.
        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        for byte in &wire {
            frames.extend(push_all(&mut asm, std::slice::from_ref(byte)).unwrap());
        }
        assert!(asm.is_idle());
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].tag, 4);
        assert_eq!(frames[0].payload, b"hello");
        assert!(frames[0].eval_key_fingerprint.is_none());
        assert_eq!(frames[1].tag, 7);
        assert!(frames[1].payload.is_empty());
        assert_eq!(frames[2].payload, vec![9u8; 100]);
    }

    #[test]
    fn eval_key_frames_are_fingerprinted_streaming() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let wire = frame_bytes(TAG_EVAL_KEYS, &payload);
        let mut asm = FrameAssembler::new();
        let mut frames = Vec::new();
        // Uneven chunk sizes so hash updates never align with the payload.
        for chunk in wire.chunks(977) {
            frames.extend(push_all(&mut asm, chunk).unwrap());
        }
        assert_eq!(frames.len(), 1);
        assert_eq!(
            frames[0].eval_key_fingerprint.unwrap(),
            fingerprint_eval_key_payload(&payload),
            "the chunked digest must equal the one-shot digest"
        );
    }

    #[test]
    fn oversized_headers_are_refused_before_any_payload() {
        let mut asm = FrameAssembler::new();
        let mut wire = vec![1u8];
        wire.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let err = push_all(&mut asm, &wire).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("exceeds"), "{rendered}");
        assert!(
            rendered.contains(&MAX_FRAME_BYTES.to_string()),
            "{rendered}"
        );
    }

    #[test]
    fn admission_runs_on_the_announced_header_not_the_received_bytes() {
        let mut asm = FrameAssembler::new();
        let mut out = VecDeque::new();
        // Header announces 1 MB but not a single payload byte follows.
        let mut wire = vec![3u8];
        wire.extend_from_slice(&1_000_000u64.to_le_bytes());
        let mut seen = None;
        asm.push(
            &wire,
            &mut |tag, len| {
                seen = Some((tag, len));
                Err(ServiceError::Protocol("quota: refused".into()))
            },
            &mut out,
        )
        .unwrap_err();
        assert_eq!(seen, Some((3u8, 1_000_000u64)));
        assert!(out.is_empty());
    }

    #[test]
    fn a_lying_header_reserves_at_most_one_chunk_ahead() {
        let mut asm = FrameAssembler::new();
        let mut wire = vec![4u8];
        wire.extend_from_slice(&(MAX_FRAME_BYTES).to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        let _ = push_all(&mut asm, &wire).unwrap();
        assert!(!asm.is_idle());
        assert!(
            asm.payload.capacity() <= PAYLOAD_RESERVE_CHUNK,
            "announced {MAX_FRAME_BYTES} bytes but only 64 arrived; capacity {} exceeds one \
             reserve step",
            asm.payload.capacity()
        );
    }

    #[test]
    fn bytes_wanted_never_crosses_a_frame_boundary() {
        let mut asm = FrameAssembler::new();
        assert_eq!(asm.bytes_wanted(), 9);
        let wire = frame_bytes(4, b"abcdef");
        let _ = push_all(&mut asm, &wire[..3]).unwrap();
        assert_eq!(asm.bytes_wanted(), 6, "remaining header bytes");
        let _ = push_all(&mut asm, &wire[3..11]).unwrap();
        assert_eq!(asm.bytes_wanted(), 4, "remaining payload bytes");
        let frames = push_all(&mut asm, &wire[11..]).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(asm.bytes_wanted(), 9, "back to awaiting a header");
    }
}
