//! The chaos e2e suite: a [`ReliableClient`] must complete the paper's
//! Sobel benchmark **bit-identically** to the in-process encrypted executor
//! through every injected fault class — artificial delay, short read,
//! mid-frame disconnect, and an in-transit bit flip — by retrying with
//! backoff and resuming the session ticket, never re-uploading a single
//! evaluation-key byte.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use eva_backend::{execute_parallel, EncryptedContext};
use eva_core::{compile, CompilerOptions};
use eva_service::{
    ChaosStream, EvaServer, Fault, ReliableClient, RetryPolicy, ServerConfig, ServiceError,
    TAG_EVAL_KEYS, TAG_HELLO, TAG_INPUTS,
};

const SEED: u64 = 7;

/// A per-connection traffic tap whose buffers outlive the connection, so
/// every attempt — including the faulted ones the client abandons — can be
/// audited after the fact.
#[derive(Clone, Debug, Default)]
struct Tap {
    sent: Arc<Mutex<Vec<u8>>>,
    received: Arc<Mutex<Vec<u8>>>,
}

impl Tap {
    fn sent(&self) -> Vec<u8> {
        self.sent.lock().unwrap().clone()
    }

    fn received(&self) -> Vec<u8> {
        self.received.lock().unwrap().clone()
    }
}

/// A [`TcpStream`] that copies both directions into a [`Tap`].
#[derive(Debug)]
struct TappedStream {
    inner: TcpStream,
    tap: Tap,
}

impl Read for TappedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.tap
            .received
            .lock()
            .unwrap()
            .extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

impl Write for TappedStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.tap.sent.lock().unwrap().extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Sums the bytes belonging to frames with `tag`, tolerating a trailing
/// partial frame (faulted captures legitimately end mid-frame, where the
/// strict `frame_index` would refuse the whole capture).
fn tag_bytes_tolerant(capture: &[u8], tag: u8) -> u64 {
    let mut total = 0u64;
    let mut pos = 0usize;
    while capture.len() - pos >= 9 {
        let frame_tag = capture[pos];
        let len = u64::from_le_bytes(capture[pos + 1..pos + 9].try_into().unwrap()) as usize;
        let end = pos + 9 + len;
        if frame_tag == tag {
            total += (capture.len().min(end) - pos) as u64;
        }
        if end > capture.len() {
            break;
        }
        pos = end;
    }
    total
}

/// Total wire length (header + payload) of the frame starting at `pos`.
fn frame_len_at(capture: &[u8], pos: usize) -> u64 {
    assert!(
        capture.len() >= pos + 9,
        "no complete frame header at {pos}"
    );
    9 + u64::from_le_bytes(capture[pos + 1..pos + 9].try_into().unwrap())
}

fn assert_bit_identical(
    got: &HashMap<String, Vec<f64>>,
    expected: &HashMap<String, Vec<f64>>,
    round: &str,
) {
    for (name, expected_values) in expected {
        let got_values = &got[name];
        assert_eq!(got_values.len(), expected_values.len());
        for (a, b) in got_values.iter().zip(expected_values) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "round {round}: output {name:?} deviates from the in-process executor"
            );
        }
    }
}

fn set_read_deadline(control: &EvaServer, deadline: Option<Duration>) {
    let _ = control.clone().with_config(ServerConfig {
        read_deadline: deadline,
        ..ServerConfig::default()
    });
}

#[test]
fn retrying_client_survives_every_fault_class_bit_identically() {
    let app = eva_apps::image::sobel(8, 5);
    let compiled = compile(&app.program, &CompilerOptions::default()).unwrap();
    let inputs = app.inputs.clone();

    // The ground truth: one in-process encrypted execution under SEED.
    let mut in_process = EncryptedContext::setup(&compiled, Some(SEED)).unwrap();
    let bindings = in_process.encrypt_inputs(&compiled, &inputs).unwrap();
    let values = execute_parallel(in_process.evaluation(), &compiled, bindings, 2).unwrap();
    let expected = in_process.decrypt_outputs(&compiled, &values).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap().with_threads(2);
    let control = server.clone();
    let serve = std::thread::spawn(move || server.serve_forever(&listener));

    // The connector arms each new connection with whatever fault plan the
    // test staged (empty = clean) and keeps a tap on its traffic.
    let next_plan: Arc<Mutex<Vec<Fault>>> = Arc::default();
    let taps: Arc<Mutex<Vec<Tap>>> = Arc::default();
    let connector = {
        let next_plan = Arc::clone(&next_plan);
        let taps = Arc::clone(&taps);
        move |_attempt: u32| -> Result<ChaosStream<TappedStream>, ServiceError> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_write_timeout(Some(Duration::from_secs(30)))?;
            let tap = Tap::default();
            taps.lock().unwrap().push(tap.clone());
            let plan = std::mem::take(&mut *next_plan.lock().unwrap());
            Ok(ChaosStream::new(TappedStream { inner: stream, tap }, plan))
        }
    };
    let policy = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(100),
        jitter: Duration::from_millis(10),
        seed: 9,
    };
    let mut client = ReliableClient::new(connector, SEED, policy).deterministic_for_tests();

    // ---- Phase 1: clean cold session (uploads keys, mints the ticket). ----
    let outputs = client.evaluate(&inputs).unwrap();
    assert_bit_identical(&outputs, &expected, "cold");
    client.ticket().expect("seeded sessions mint a ticket");

    // ---- Phase 2: clean warm reconnect — and the wire geometry lesson. ----
    client.disconnect();
    let outputs = client.evaluate(&inputs).unwrap();
    assert_bit_identical(&outputs, &expected, "warm");
    assert!(client.resumed());
    // Deterministic sessions repeat the same bytes, so the warm capture
    // gives exact offsets for aiming the faults: the resuming Hello frame
    // on the sent side, the Manifest frame (and thus where the Outputs
    // frame starts) on the received side.
    let (warm_sent, warm_received) = {
        let taps = taps.lock().unwrap();
        assert_eq!(taps.len(), 2, "two clean connections so far");
        (taps[1].sent(), taps[1].received())
    };
    assert_eq!(warm_sent[0], TAG_HELLO);
    let hello_len = frame_len_at(&warm_sent, 0);
    let manifest_len = frame_len_at(&warm_received, 0);
    assert_eq!(tag_bytes_tolerant(&warm_sent, TAG_EVAL_KEYS), 0);
    assert!(tag_bytes_tolerant(&warm_sent, TAG_INPUTS) > 1_000);

    // ---- Fault class 1: a mid-upload stall longer than the server's read
    // deadline. The server must cut the session; the retry completes. ----
    set_read_deadline(&control, Some(Duration::from_secs(2)));
    *next_plan.lock().unwrap() = vec![Fault::DelayWrite {
        at: hello_len + 40, // 40 bytes into the Inputs frame
        delay: Duration::from_secs(4),
    }];
    client.disconnect();
    let outputs = client.evaluate(&inputs).unwrap();
    assert_bit_identical(&outputs, &expected, "delay");
    set_read_deadline(&control, ServerConfig::default().read_deadline);

    // ---- Fault class 2: a short read — the Outputs frame ends early. ----
    *next_plan.lock().unwrap() = vec![Fault::TruncateRead {
        at: manifest_len + 60, // 60 bytes into the Outputs frame
    }];
    client.disconnect();
    let outputs = client.evaluate(&inputs).unwrap();
    assert_bit_identical(&outputs, &expected, "short-read");

    // ---- Fault class 3: a mid-frame disconnect while uploading inputs. ----
    *next_plan.lock().unwrap() = vec![Fault::DisconnectWrite { at: hello_len + 60 }];
    client.disconnect();
    let outputs = client.evaluate(&inputs).unwrap();
    assert_bit_identical(&outputs, &expected, "disconnect");

    // ---- Fault class 4: a bit flip in transit. Flipping bit 1 of the
    // Outputs frame tag (5 → 7) turns it into a Bye the client refuses. ----
    *next_plan.lock().unwrap() = vec![Fault::FlipReadBit {
        at: manifest_len, // the Outputs frame's tag byte
        bit: 1,
    }];
    client.disconnect();
    let outputs = client.evaluate(&inputs).unwrap();
    assert_bit_identical(&outputs, &expected, "bit-flip");

    // ---- The audits. ----
    // Every fault class needed exactly one retry, and every retry resumed.
    let stats = client.stats();
    assert_eq!(
        stats.retried_evaluations,
        4,
        "events: {:?}",
        client.events()
    );
    assert_eq!(stats.resumed_retries, 4);
    let resumed_events = client
        .events()
        .iter()
        .filter(|event| *event == "RETRY-RESUMED")
        .count();
    assert_eq!(resumed_events, 4, "events: {:?}", client.events());

    // Zero evaluation-key bytes after the cold session: not on the clean
    // warm reconnect, not on any faulted attempt, not on any retry.
    {
        let taps = taps.lock().unwrap();
        assert_eq!(taps.len(), 10, "2 clean + 4 × (faulted + retry)");
        assert!(tag_bytes_tolerant(&taps[0].sent(), TAG_EVAL_KEYS) > 100_000);
        for (index, tap) in taps.iter().enumerate().skip(1) {
            assert_eq!(
                tag_bytes_tolerant(&tap.sent(), TAG_EVAL_KEYS),
                0,
                "connection {index} re-uploaded key bytes"
            );
        }
    }

    client.finish().unwrap();
    control.shutdown();
    serve
        .join()
        .unwrap()
        .expect("serve_forever returns cleanly after shutdown");
    let stats = control.stats();
    assert_eq!(stats.session_panics, 0);
    assert_eq!(stats.sessions_started, 10);
    assert!(stats.resumed_sessions >= 5, "stats: {stats:?}");
}
