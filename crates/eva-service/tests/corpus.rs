//! The malformed-`.evaprog` corpus: the server's load gate, exercised file
//! by file.
//!
//! A server loads programs from disk with `EvaServer::from_program_file` and
//! must treat every byte of them as untrusted. This test materializes a
//! corpus next to the system temp dir — one valid bundle plus one variant
//! per corruption class — and asserts the gate's contract:
//!
//! * the valid bundle loads AND serves a real TCP session correctly;
//! * every mutated bundle is refused with the clean protocol-level
//!   [`ServiceError::InvalidProgram`] carrying the named check that fired —
//!   never a panic, never a partially-built server;
//! * byte-level garbage (truncation, bit flips, an empty file) is refused at
//!   the decode layer, also without panicking.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use eva_core::serialize::compiled_to_bytes;
use eva_core::{
    compile, CompiledProgram, CompilerOptions, ConstantValue, Opcode, Program, ValueType,
};
use eva_service::{EvaClient, EvaServer, ServiceError};

/// Same mixed workload as the localhost tests: rotations, relinearization,
/// plain operands and match-scale corrections all present, so every
/// corruption class below has something to corrupt.
fn mixed_program() -> Program {
    let mut p = Program::new("corpus", 16);
    let image = p.input_cipher("image", 30);
    let weights = p.input_vector("weights", 20);
    let c = p.constant(ConstantValue::Scalar(0.25), 20);
    let shifted = p.instruction(Opcode::RotateLeft(3), &[image]);
    let weighted = p.instruction(Opcode::Multiply, &[shifted, weights]);
    let scaled = p.instruction(Opcode::Multiply, &[weighted, c]);
    let sum = p.instruction(Opcode::Add, &[scaled, image]);
    let sq = p.instruction(Opcode::Multiply, &[sum, sum]);
    p.output("out", sq, 30);
    p
}

/// One corruption class: a name for the corpus file, the mutation, and the
/// verifier checks allowed to catch it (several can legitimately fire — see
/// `tests/verifier_props.rs` — but at least one of these must).
struct Corruption {
    name: &'static str,
    expected_checks: &'static [&'static str],
    mutate: fn(&mut CompiledProgram),
}

const CORRUPTIONS: &[Corruption] = &[
    Corruption {
        name: "swapped-arg",
        expected_checks: &["scale-match", "chain-conformity", "exact-scales"],
        mutate: |compiled| {
            let program = &mut compiled.program;
            let id = (0..program.len())
                .find(|&id| {
                    matches!(
                        program.opcode(id),
                        Some(Opcode::Add | Opcode::Sub | Opcode::Multiply)
                    ) && program
                        .args(id)
                        .iter()
                        .all(|&a| program.node(a).ty.is_cipher())
                        && !program.args(id).contains(&0)
                })
                .expect("cipher binary op");
            program.replace_arg_at(id, 1, 0);
        },
    },
    Corruption {
        name: "dropped-relinearize",
        expected_checks: &["relinearized", "exact-scales", "scale-match"],
        mutate: |compiled| {
            let program = &mut compiled.program;
            let relin = (0..program.len())
                .find(|&id| program.opcode(id) == Some(Opcode::Relinearize))
                .expect("relinearize node");
            let operand = program.args(relin)[0];
            for user in 0..program.len() {
                program.replace_arg(user, relin, operand);
            }
            program.redirect_outputs(relin, operand);
        },
    },
    Corruption {
        name: "deepened-rescale-chain",
        expected_checks: &["level-budget", "exact-scales"],
        mutate: |compiled| {
            for _ in 0..=compiled.parameters.data_primes.len() {
                let out = compiled.program.outputs()[0].node;
                let extra = compiled.program.push_instruction(
                    Opcode::Rescale(30),
                    vec![out],
                    ValueType::Cipher,
                );
                compiled.program.redirect_outputs(out, extra);
            }
        },
    },
    Corruption {
        name: "missing-rotation-key",
        expected_checks: &["rotation-keys"],
        mutate: |compiled| {
            assert!(!compiled.rotation_steps.is_empty());
            compiled.rotation_steps.remove(0);
        },
    },
    Corruption {
        name: "tampered-exact-scale",
        expected_checks: &["exact-scales"],
        mutate: |compiled| {
            let out = compiled.program.outputs()[0].node;
            let stamped = compiled.program.node(out).scale_log2;
            compiled.program.set_scale_log2(out, stamped + 1.0);
        },
    },
    Corruption {
        // The primes themselves are cross-checked by the wire codec at decode
        // time, so this class tampers with the ring degree: it decodes fine
        // but the verifier refuses the unsupported/unpackable ring.
        name: "tampered-parameters",
        expected_checks: &["parameters"],
        mutate: |compiled| {
            compiled.parameters.degree = 512;
        },
    },
];

/// Writes the corpus into a fresh per-process directory and returns
/// `(dir, valid_path, corrupted_paths)`.
fn materialize_corpus() -> (PathBuf, PathBuf, Vec<(PathBuf, &'static [&'static str])>) {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let dir = std::env::temp_dir().join(format!("eva-evaprog-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let valid = dir.join("valid.evaprog");
    std::fs::write(&valid, compiled_to_bytes(&compiled)).unwrap();

    let mut corrupted = Vec::new();
    for corruption in CORRUPTIONS {
        let mut mutated = compiled.clone();
        (corruption.mutate)(&mut mutated);
        let path = dir.join(format!("{}.evaprog", corruption.name));
        std::fs::write(&path, compiled_to_bytes(&mutated)).unwrap();
        corrupted.push((path, corruption.expected_checks));
    }
    (dir, valid, corrupted)
}

#[test]
fn malformed_corpus_is_rejected_and_the_valid_bundle_serves() {
    let (dir, valid, corrupted) = materialize_corpus();

    // Every corrupted bundle decodes fine but is refused by the verifier
    // with a protocol-level error naming the check that fired.
    for (path, expected_checks) in &corrupted {
        let loaded = EvaServer::from_program_file(path);
        match loaded {
            Err(ServiceError::InvalidProgram(diagnostics)) => {
                assert!(!diagnostics.diagnostics.is_empty());
                assert!(
                    diagnostics
                        .diagnostics
                        .iter()
                        .any(|d| expected_checks.contains(&d.check.as_str())),
                    "{path:?}: expected one of {expected_checks:?}, got: {:?}",
                    diagnostics
                        .diagnostics
                        .iter()
                        .map(|d| d.check.as_str())
                        .collect::<Vec<_>>()
                );
            }
            Err(other) => panic!("{path:?}: wrong refusal {other}"),
            Ok(_) => panic!("{path:?}: malformed program was accepted"),
        }
    }

    // Byte-level garbage never reaches the verifier: the decoder refuses it
    // (and never panics).
    let valid_bytes = std::fs::read(&valid).unwrap();
    let truncated = dir.join("truncated.evaprog");
    std::fs::write(&truncated, &valid_bytes[..valid_bytes.len() / 2]).unwrap();
    let empty = dir.join("empty.evaprog");
    std::fs::write(&empty, []).unwrap();
    let mut flipped_bytes = valid_bytes.clone();
    flipped_bytes[8] ^= 0xff;
    let flipped = dir.join("bit-flipped.evaprog");
    std::fs::write(&flipped, &flipped_bytes).unwrap();
    for path in [&truncated, &empty, &flipped] {
        assert!(
            EvaServer::from_program_file(path).is_err(),
            "{path:?}: garbage bytes were accepted"
        );
    }

    // The valid bundle both loads and actually serves: full TCP round trip
    // against the reference semantics.
    let server = EvaServer::from_program_file(&valid)
        .unwrap()
        .with_threads(2);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let inputs: HashMap<String, Vec<f64>> = [
        (
            "image".to_string(),
            (0..16).map(|i| (i as f64) / 8.0 - 1.0).collect::<Vec<_>>(),
        ),
        (
            "weights".to_string(),
            (0..16).map(|i| ((i % 3) as f64) - 1.0).collect::<Vec<_>>(),
        ),
    ]
    .into_iter()
    .collect();
    let mut client = EvaClient::handshake(TcpStream::connect(addr).unwrap(), None).unwrap();
    let outputs = client.evaluate(&inputs).unwrap();
    client.finish().unwrap();
    server_thread.join().unwrap().unwrap();

    let program = mixed_program();
    let reference = eva_backend::run_reference(&program, &inputs).unwrap();
    for (a, b) in outputs["out"].iter().zip(&reference["out"]) {
        assert!((a - b).abs() <= 1e-3, "encrypted {a} vs reference {b}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
