//! Robustness tests for the service's deadlines, quotas, concurrency
//! bound and graceful shutdown: slow, stalled and abusive peers must be
//! bounded in the resources they can pin, and every abnormal close must be
//! preceded by a protocol `Error` frame naming what went wrong.

use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use eva_core::{compile, CompilerOptions, Opcode, Program};
use eva_service::protocol::{expect_message, write_message};
use eva_service::{
    ClientConfig, EvaClient, EvaServer, Message, ServerConfig, ServiceError, MAX_FRAME_BYTES,
    PROTOCOL_VERSION, TAG_EVAL_KEYS,
};

fn square_program() -> Program {
    let mut p = Program::new("square", 8);
    let x = p.input_cipher("x", 30);
    let sq = p.instruction(Opcode::Multiply, &[x, x]);
    p.output("out", sq, 30);
    p
}

fn square_server() -> EvaServer {
    let compiled = compile(&square_program(), &CompilerOptions::default()).unwrap();
    EvaServer::new(compiled).unwrap()
}

fn square_inputs() -> HashMap<String, Vec<f64>> {
    [("x".to_string(), vec![1.5; 8])].into_iter().collect()
}

/// Satellite: an oversized frame is answered with a protocol `Error` frame
/// **naming the limit** before the close — not a silent hang-up.
#[test]
fn oversized_frame_gets_an_error_frame_naming_the_limit() {
    let server = square_server();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let mut stream = TcpStream::connect(addr).unwrap();
    // A frame header announcing more than MAX_FRAME_BYTES, in Hello position.
    stream.write_all(&[eva_service::TAG_HELLO]).unwrap();
    stream
        .write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes())
        .unwrap();
    stream.flush().unwrap();
    match expect_message(&mut stream).unwrap() {
        Message::Error(msg) => {
            assert!(msg.contains("exceeds"), "unexpected error text: {msg}");
            assert!(
                msg.contains(&MAX_FRAME_BYTES.to_string()),
                "the limit must be named: {msg}"
            );
        }
        other => panic!("expected Error, got {other:?}"),
    }
    let reports = server_thread.join().unwrap().unwrap();
    assert!(reports[0].is_err());
}

/// Satellite: a peer that sends a valid tag + length then stops must be
/// disconnected by the read deadline — server side.
#[test]
fn partial_frame_stall_trips_the_server_read_deadline() {
    let server = square_server().with_config(ServerConfig {
        read_deadline: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let stats_handle = server.clone();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Valid Hello tag + plausible length… then silence.
    stream.write_all(&[eva_service::TAG_HELLO]).unwrap();
    stream.write_all(&100u64.to_le_bytes()).unwrap();
    stream.write_all(&[1, 2, 3]).unwrap();
    stream.flush().unwrap();
    // The server must send a deadline Error frame, then close.
    match expect_message(&mut stream).unwrap() {
        Message::Error(msg) => assert!(msg.contains("deadline"), "unexpected error: {msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    let reports = server_thread.join().unwrap().unwrap();
    let err = reports[0].as_ref().unwrap_err();
    assert!(err.to_string().contains("deadline"), "{err}");
    assert!(err.is_transient(), "deadline disconnects must be retryable");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the stall was not bounded by the deadline"
    );
    assert_eq!(stats_handle.stats().sessions_failed, 1);
}

/// Satellite: the same stall, asserted from the client side — a server that
/// accepts and then goes silent trips the client's read timeout.
#[test]
fn stalled_server_trips_the_client_read_timeout() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // "Server" accepts, reads the Hello, then stalls without ever answering.
    let stall = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(10));
        drop(stream);
    });

    let started = Instant::now();
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(Duration::from_millis(300)),
        write_timeout: Some(Duration::from_secs(2)),
    };
    let err = EvaClient::connect_with(addr, Some(3), &config).unwrap_err();
    assert!(
        matches!(&err, ServiceError::Io(io) if io.kind() == std::io::ErrorKind::WouldBlock
            || io.kind() == std::io::ErrorKind::TimedOut),
        "expected a socket timeout, got {err}"
    );
    assert!(err.is_transient());
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "client read timeout did not bound the stall"
    );
    drop(stall); // detach: the stalling thread exits on its own timer
}

/// Tentpole: at the concurrent-session limit, further connections get a
/// polite `busy:` Error frame (so a retrying client backs off) and are
/// counted in the server stats.
#[test]
fn busy_server_rejects_politely_at_the_session_limit() {
    let server = square_server().with_config(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    let stats_handle = server.clone();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    // Session 1 handshakes fully (so its worker is registered) and stays open.
    let mut first = EvaClient::connect(addr, Some(1)).unwrap();
    // Session 2 must be turned away with the busy error during handshake.
    let err = EvaClient::connect(addr, Some(2)).unwrap_err();
    match &err {
        ServiceError::Remote(msg) => {
            assert!(msg.starts_with("busy:"), "unexpected refusal: {msg}");
            assert!(
                msg.contains("1-session"),
                "the limit should be named: {msg}"
            );
        }
        other => panic!("expected a Remote busy error, got {other}"),
    }
    assert!(err.is_transient(), "busy must be retryable");

    // The admitted session is unaffected by the rejection next door.
    let outputs = first.evaluate(&square_inputs()).unwrap();
    assert!((outputs["out"][0] - 2.25).abs() < 1e-3);
    first.finish().unwrap();

    let reports = server_thread.join().unwrap().unwrap();
    assert_eq!(reports.len(), 2);
    assert!(reports[0].is_ok());
    assert!(reports[1].is_err());
    let stats = stats_handle.stats();
    assert_eq!(stats.busy_rejections, 1);
    assert_eq!(stats.sessions_completed, 1);
    assert_eq!(stats.evaluations, 1);
}

/// Tentpole: the per-session evaluation-key quota refuses an over-quota
/// upload against its **announced** length, with a `quota:` Error frame.
#[test]
fn eval_key_quota_refuses_oversized_uploads() {
    let server = square_server().with_config(ServerConfig {
        eval_key_quota: 10_000, // far below a real key set
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    // Drive the wire directly: Hello, read the manifest, then announce an
    // EvalKeys frame bigger than the quota — without sending a body at all
    // (the refusal must come from the header alone).
    let mut stream = TcpStream::connect(addr).unwrap();
    write_message(
        &mut stream,
        &Message::Hello {
            protocol: PROTOCOL_VERSION,
            resume: None,
        },
    )
    .unwrap();
    match expect_message(&mut stream).unwrap() {
        Message::Manifest { .. } => {}
        other => panic!("expected Manifest, got {other:?}"),
    }
    stream.write_all(&[TAG_EVAL_KEYS]).unwrap();
    stream.write_all(&1_000_000u64.to_le_bytes()).unwrap();
    stream.flush().unwrap();
    match expect_message(&mut stream).unwrap() {
        Message::Error(msg) => {
            assert!(msg.contains("quota:"), "unexpected error: {msg}");
            assert!(msg.contains("evaluation-key"), "{msg}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    let reports = server_thread.join().unwrap().unwrap();
    let err = reports[0].as_ref().unwrap_err();
    assert!(err.to_string().contains("quota:"), "{err}");
    assert!(err.is_transient(), "fresh sessions get fresh quotas");
}

/// Tentpole: graceful shutdown stops accepting but **drains** the in-flight
/// session — its evaluation completes, nothing is aborted.
#[test]
fn graceful_shutdown_drains_in_flight_sessions() {
    let server = square_server();
    let control = server.clone();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let serve_thread = std::thread::spawn(move || server.serve_forever(&listener));

    // A session is mid-flight when shutdown begins…
    let mut client = EvaClient::connect(addr, Some(9)).unwrap();
    let shutdown_control = control.clone();
    let shutdown_thread = std::thread::spawn(move || shutdown_control.shutdown());
    std::thread::sleep(Duration::from_millis(100));
    // …and still completes its work.
    let outputs = client.evaluate(&square_inputs()).unwrap();
    assert!((outputs["out"][0] - 2.25).abs() < 1e-3);
    client.finish().unwrap();

    shutdown_thread.join().unwrap();
    serve_thread
        .join()
        .unwrap()
        .expect("serve_forever returns cleanly after shutdown");
    assert!(control.is_shutting_down());
    let stats = control.stats();
    assert_eq!(stats.sessions_completed, 1);
    assert_eq!(stats.evaluations, 1);
    // The listener is closed with the serve loop: new connections die.
    assert!(EvaClient::connect_with(
        addr,
        None,
        &ClientConfig {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
        }
    )
    .is_err());
}
