//! End-to-end tests over a real localhost TCP socket: the client keeps every
//! key, the server executes over ciphertexts, and the decrypted results
//! match the in-process encrypted executor bit-for-bit under seeded
//! randomness.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};

use eva_backend::{execute_parallel, run_reference, EncryptedContext};
use eva_core::{compile, CompilerOptions, Opcode, Program};
use eva_service::{contains_bytes, EvaClient, EvaServer, RecordingStream};

/// A rotation + plaintext-operand program: exercises Galois keys,
/// relinearization, plain inputs and match-scale corrections.
fn mixed_program() -> Program {
    let mut p = Program::new("mixed", 16);
    let image = p.input_cipher("image", 30);
    let weights = p.input_vector("weights", 20);
    let c = p.constant(eva_core::ConstantValue::Scalar(0.25), 20);
    let shifted = p.instruction(Opcode::RotateLeft(3), &[image]);
    let weighted = p.instruction(Opcode::Multiply, &[shifted, weights]);
    let scaled = p.instruction(Opcode::Multiply, &[weighted, c]);
    let sum = p.instruction(Opcode::Add, &[scaled, image]);
    let sq = p.instruction(Opcode::Multiply, &[sum, sum]);
    p.output("out", sq, 30);
    p
}

fn mixed_inputs() -> HashMap<String, Vec<f64>> {
    [
        (
            "image".to_string(),
            (0..16).map(|i| (i as f64) / 8.0 - 1.0).collect::<Vec<_>>(),
        ),
        (
            "weights".to_string(),
            (0..16).map(|i| ((i % 3) as f64) - 1.0).collect::<Vec<_>>(),
        ),
    ]
    .into_iter()
    .collect()
}

#[test]
fn client_server_roundtrip_matches_in_process_executor_bit_for_bit() {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let inputs = mixed_inputs();
    let seed = 7u64;

    // In-process encrypted execution with the same seed the client will use.
    let mut in_process = EncryptedContext::setup(&compiled, Some(seed)).unwrap();
    let bindings = in_process.encrypt_inputs(&compiled, &inputs).unwrap();
    let values = execute_parallel(in_process.evaluation(), &compiled, bindings, 2).unwrap();
    let expected = in_process.decrypt_outputs(&compiled, &values).unwrap();

    // Client → server → client over a real socket.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled.clone()).unwrap().with_threads(2);
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let mut client = EvaClient::handshake(stream, Some(seed)).unwrap();
    let outputs = client.evaluate(&inputs).unwrap();

    // Identical seeds + identical draw order ⇒ identical keys, identical
    // encryption randomness, identical circuit ⇒ bit-identical results.
    for (name, expected_values) in &expected {
        let got = &outputs[name];
        for (a, b) in got.iter().zip(expected_values) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "output {name:?} deviates from the in-process executor"
            );
        }
    }
    // And well within the ≤ 1e-4 regression bound against the plaintext
    // reference semantics.
    let reference = run_reference(&compiled.program, &inputs).unwrap();
    for (a, b) in outputs["out"].iter().zip(&reference["out"]) {
        assert!((a - b).abs() <= 1e-4, "encrypted {a} vs reference {b}");
    }

    // The secret key never appeared in either direction of the traffic.
    let probe = client.secret_key_probe();
    let stream = client.finish().unwrap();
    assert!(probe.len() >= 64);
    for window in [64, 32] {
        for chunk in probe.chunks(window).take(8) {
            assert!(
                !contains_bytes(stream.sent(), chunk),
                "secret key bytes on the wire"
            );
            assert!(!contains_bytes(stream.received(), chunk));
        }
    }

    let reports = server_thread.join().unwrap().unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].as_ref().unwrap().evaluations, 1);
}

#[test]
fn concurrent_sessions_with_different_keys_are_isolated() {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let inputs = mixed_inputs();
    let reference = run_reference(&compiled.program, &inputs).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    // Two clients with different keys, connected at the same time; the second
    // runs two evaluation rounds over one session.
    let mut handles = Vec::new();
    for (seed, rounds) in [(101u64, 1usize), (202, 2)] {
        let inputs = inputs.clone();
        let reference = reference["out"].clone();
        handles.push(std::thread::spawn(move || {
            let mut client = EvaClient::connect(addr, Some(seed)).unwrap();
            for _ in 0..rounds {
                let outputs = client.evaluate(&inputs).unwrap();
                for (a, b) in outputs["out"].iter().zip(&reference) {
                    assert!((a - b).abs() <= 1e-4);
                }
            }
            client.finish().unwrap();
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let reports = server_thread.join().unwrap().unwrap();
    let total: usize = reports
        .iter()
        .map(|r| r.as_ref().unwrap().evaluations)
        .sum();
    assert_eq!(total, 3);
}

#[test]
fn server_rejects_missing_relin_key_and_bad_protocol() {
    use eva_service::{Message, PROTOCOL_VERSION};

    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    // Session 1: wrong protocol version is refused with an Error message.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        eva_service::protocol::write_message(
            &mut stream,
            &Message::Hello {
                protocol: PROTOCOL_VERSION + 1,
            },
        )
        .unwrap();
        match eva_service::protocol::expect_message(&mut stream).unwrap() {
            Message::Error(msg) => assert!(msg.contains("protocol")),
            other => panic!("expected Error, got {other:?}"),
        }
    }
    // Session 2: withholding the relinearization key is refused.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        eva_service::protocol::write_message(
            &mut stream,
            &Message::Hello {
                protocol: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        let manifest = match eva_service::protocol::expect_message(&mut stream).unwrap() {
            Message::Manifest(m) => *m,
            other => panic!("expected Manifest, got {other:?}"),
        };
        assert!(manifest.needs_relin);
        eva_service::protocol::write_message(
            &mut stream,
            &Message::EvalKeys {
                relin: None,
                galois: Box::new(eva_ckks::GaloisKeys::default()),
            },
        )
        .unwrap();
        match eva_service::protocol::expect_message(&mut stream).unwrap() {
            Message::Error(msg) => assert!(msg.contains("relinearization")),
            other => panic!("expected Error, got {other:?}"),
        }
    }
    let reports = server_thread.join().unwrap().unwrap();
    assert!(reports.iter().all(|r| r.is_err()));
}

#[test]
fn server_loads_a_compiled_program_bundle_from_disk() {
    // The `.evaprog` deployment artifact: compile once, ship the bundle,
    // serve it from the file.
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let path =
        std::env::temp_dir().join(format!("eva_service_test_{}.evaprog", std::process::id()));
    std::fs::write(&path, eva_core::serialize::compiled_to_bytes(&compiled)).unwrap();
    let server = EvaServer::from_program_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(server.manifest().name, "mixed");
    assert_eq!(server.compiled(), &compiled);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));
    let inputs = mixed_inputs();
    let reference = run_reference(&compiled.program, &inputs).unwrap();
    let mut client = EvaClient::connect(addr, Some(11)).unwrap();
    let outputs = client.evaluate(&inputs).unwrap();
    for (a, b) in outputs["out"].iter().zip(&reference["out"]) {
        assert!((a - b).abs() <= 1e-4);
    }
    client.finish().unwrap();
    server_thread.join().unwrap().unwrap();
}

#[test]
fn evaluating_with_wrong_input_names_is_a_clean_remote_error() {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let mut client = EvaClient::connect(addr, Some(5)).unwrap();
    let bogus: HashMap<String, Vec<f64>> =
        [("nonsense".to_string(), vec![1.0])].into_iter().collect();
    // The client refuses locally: the manifest says which inputs exist.
    assert!(client.evaluate(&bogus).is_err());
    drop(client);
    // The server sees a clean hang-up, not a crash.
    let _ = server_thread.join().unwrap();
}
