//! End-to-end tests over a real localhost TCP socket: the client keeps every
//! key, the server executes over ciphertexts, and the decrypted results
//! match the in-process encrypted executor bit-for-bit under seeded
//! randomness.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};

use eva_backend::{execute_parallel, run_reference, EncryptedContext, NodeValue};
use eva_core::{compile, CompilerOptions, NodeKind, Opcode, Program};
use eva_service::{
    bytes_with_tag, contains_bytes, frame_index, EvaClient, EvaServer, RecordingStream,
    TAG_EVAL_KEYS, TAG_INPUTS,
};

/// A rotation + plaintext-operand program: exercises Galois keys,
/// relinearization, plain inputs and match-scale corrections.
fn mixed_program() -> Program {
    let mut p = Program::new("mixed", 16);
    let image = p.input_cipher("image", 30);
    let weights = p.input_vector("weights", 20);
    let c = p.constant(eva_core::ConstantValue::Scalar(0.25), 20);
    let shifted = p.instruction(Opcode::RotateLeft(3), &[image]);
    let weighted = p.instruction(Opcode::Multiply, &[shifted, weights]);
    let scaled = p.instruction(Opcode::Multiply, &[weighted, c]);
    let sum = p.instruction(Opcode::Add, &[scaled, image]);
    let sq = p.instruction(Opcode::Multiply, &[sum, sum]);
    p.output("out", sq, 30);
    p
}

fn mixed_inputs() -> HashMap<String, Vec<f64>> {
    [
        (
            "image".to_string(),
            (0..16).map(|i| (i as f64) / 8.0 - 1.0).collect::<Vec<_>>(),
        ),
        (
            "weights".to_string(),
            (0..16).map(|i| ((i % 3) as f64) - 1.0).collect::<Vec<_>>(),
        ),
    ]
    .into_iter()
    .collect()
}

#[test]
fn client_server_roundtrip_matches_in_process_executor_bit_for_bit() {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let inputs = mixed_inputs();
    let seed = 7u64;

    // In-process encrypted execution with the same seed the client will use.
    let mut in_process = EncryptedContext::setup(&compiled, Some(seed)).unwrap();
    let bindings = in_process.encrypt_inputs(&compiled, &inputs).unwrap();
    let values = execute_parallel(in_process.evaluation(), &compiled, bindings, 2).unwrap();
    let expected = in_process.decrypt_outputs(&compiled, &values).unwrap();

    // Client → server → client over a real socket.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled.clone()).unwrap().with_threads(2);
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let mut client = EvaClient::handshake_deterministic(stream, seed).unwrap();
    let outputs = client.evaluate(&inputs).unwrap();

    // Identical seeds + identical draw order ⇒ identical keys, identical
    // encryption randomness, identical circuit ⇒ bit-identical results.
    // (handshake_deterministic is the explicit test-only mode; plain
    // seeded handshakes draw fresh encryption randomness.)
    for (name, expected_values) in &expected {
        let got = &outputs[name];
        for (a, b) in got.iter().zip(expected_values) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "output {name:?} deviates from the in-process executor"
            );
        }
    }
    // And well within the ≤ 1e-4 regression bound against the plaintext
    // reference semantics.
    let reference = run_reference(&compiled.program, &inputs).unwrap();
    for (a, b) in outputs["out"].iter().zip(&reference["out"]) {
        assert!((a - b).abs() <= 1e-4, "encrypted {a} vs reference {b}");
    }

    // The secret key never appeared in either direction of the traffic.
    let probe = client.secret_key_probe();
    let stream = client.finish().unwrap();
    assert!(probe.len() >= 64);
    for window in [64, 32] {
        for chunk in probe.chunks(window).take(8) {
            assert!(
                !contains_bytes(stream.sent(), chunk),
                "secret key bytes on the wire"
            );
            assert!(!contains_bytes(stream.received(), chunk));
        }
    }

    let reports = server_thread.join().unwrap().unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].as_ref().unwrap().evaluations, 1);
}

#[test]
fn warm_reconnect_resumes_cached_keys_and_uploads_zero_key_bytes() {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let inputs = mixed_inputs();
    let seed = 13u64;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_for_thread = server.clone();
    let server_thread = std::thread::spawn(move || server_for_thread.serve_sessions(&listener, 3));

    // ---- Session 1 (cold): full handshake with evaluation-key upload. ----
    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let mut client = EvaClient::handshake(stream, Some(seed)).unwrap();
    assert!(!client.resumed());
    let fingerprint = client.eval_key_fingerprint().unwrap();
    let ticket = client.resumption_ticket().unwrap();
    assert_eq!(ticket.key_seed, seed);
    assert_eq!(ticket.fingerprint, fingerprint);
    let cold_outputs = client.evaluate(&inputs).unwrap();
    let stream = client.finish().unwrap();
    let cold_sent = stream.sent().to_vec();
    let cold_key_bytes = bytes_with_tag(&cold_sent, TAG_EVAL_KEYS).unwrap();
    assert!(
        cold_key_bytes > 100_000,
        "cold session should upload substantial key material, got {cold_key_bytes} bytes"
    );
    assert_eq!(server.cached_key_sets(), 1);
    assert!(server.cached_key_bytes() as u64 >= cold_key_bytes - 64);

    // ---- Session 2 (warm): resume with the ticket. ----
    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let mut client = EvaClient::handshake_resuming(stream, ticket).unwrap();
    assert!(client.resumed());
    assert_eq!(client.eval_key_fingerprint(), Some(fingerprint));
    assert_eq!(client.resumption_ticket(), Some(ticket));
    let warm_outputs = client.evaluate(&inputs).unwrap();
    let stream = client.finish().unwrap();
    let warm_sent = stream.sent().to_vec();

    // Zero evaluation-key bytes — no frame with the EvalKeys tag at all.
    let warm_frames = frame_index(&warm_sent).unwrap();
    assert!(
        warm_frames.iter().all(|&(tag, _)| tag != TAG_EVAL_KEYS),
        "warm session sent an EvalKeys frame: {warm_frames:?}"
    );
    assert_eq!(bytes_with_tag(&warm_sent, TAG_EVAL_KEYS).unwrap(), 0);
    // Upload is now dominated by the (seeded) inputs; everything else —
    // hello + goodbye — is framing noise.
    let warm_input_bytes = bytes_with_tag(&warm_sent, TAG_INPUTS).unwrap();
    assert!(
        (warm_sent.len() as u64) < warm_input_bytes + 200,
        "warm upload should be inputs plus a small constant, got {} total / {} inputs",
        warm_sent.len(),
        warm_input_bytes
    );
    assert!(
        warm_sent.len() * 5 < cold_sent.len(),
        "warm reconnect should upload a small fraction of the cold session \
         ({} vs {} bytes)",
        warm_sent.len(),
        cold_sent.len()
    );

    // The warm session re-derives the same keys, so its decrypted outputs
    // agree with the cold session to well within the regression bound — but
    // its encryption randomness is FRESH (resumed sessions draw from OS
    // entropy), so the actual input ciphertext bytes must differ. Reused
    // randomness across sessions would let an observer difference the `b`
    // components and recover encoded-plaintext differences.
    for (name, cold) in &cold_outputs {
        for (a, b) in warm_outputs[name].iter().zip(cold) {
            assert!((a - b).abs() <= 2e-4, "warm {a} vs cold {b}");
        }
    }
    {
        // Extract the Inputs frame payloads from both captures: same
        // plaintext inputs, different sessions ⇒ different ciphertext bytes.
        let inputs_payload = |capture: &[u8]| -> Vec<u8> {
            let mut offset = 0usize;
            for (tag, len) in frame_index(capture).unwrap() {
                let start = offset + 9;
                let end = start + len as usize;
                if tag == TAG_INPUTS {
                    return capture[start..end].to_vec();
                }
                offset = end;
            }
            panic!("no Inputs frame in capture");
        };
        assert_ne!(
            inputs_payload(&cold_sent),
            inputs_payload(&warm_sent),
            "warm session reused the cold session's encryption randomness"
        );
    }

    // ---- Session 3: an unknown fingerprint falls back to a full upload. ----
    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let bogus = eva_service::SessionTicket {
        key_seed: seed,
        fingerprint: eva_service::KeyFingerprint([0x5a; 32]),
    };
    let mut client = EvaClient::handshake_resuming(stream, bogus).unwrap();
    assert!(!client.resumed(), "bogus fingerprint must not resume");
    assert_eq!(
        client.eval_key_fingerprint(),
        Some(fingerprint),
        "regenerated keys hash to the original fingerprint"
    );
    client.evaluate(&inputs).unwrap();
    let stream = client.finish().unwrap();
    assert!(bytes_with_tag(stream.sent(), TAG_EVAL_KEYS).unwrap() > 0);

    let reports = server_thread.join().unwrap().unwrap();
    let reports: Vec<_> = reports.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(reports.len(), 3);
    assert!(!reports[0].resumed);
    assert!(reports[1].resumed);
    assert!(!reports[2].resumed);
    // The server computed the same fingerprint over the received bytes as
    // the client did over the generated keys.
    for report in &reports {
        assert_eq!(report.key_fingerprint, Some(fingerprint));
    }
}

#[test]
fn concurrent_sessions_with_different_keys_are_isolated() {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let inputs = mixed_inputs();
    let reference = run_reference(&compiled.program, &inputs).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    // Two clients with different keys, connected at the same time; the second
    // runs two evaluation rounds over one session.
    let mut handles = Vec::new();
    for (seed, rounds) in [(101u64, 1usize), (202, 2)] {
        let inputs = inputs.clone();
        let reference = reference["out"].clone();
        handles.push(std::thread::spawn(move || {
            let mut client = EvaClient::connect(addr, Some(seed)).unwrap();
            for _ in 0..rounds {
                let outputs = client.evaluate(&inputs).unwrap();
                for (a, b) in outputs["out"].iter().zip(&reference) {
                    assert!((a - b).abs() <= 1e-4);
                }
            }
            client.finish().unwrap();
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let reports = server_thread.join().unwrap().unwrap();
    let total: usize = reports
        .iter()
        .map(|r| r.as_ref().unwrap().evaluations)
        .sum();
    assert_eq!(total, 3);
}

#[test]
fn unseeded_sessions_have_no_resumption_ticket() {
    // Fresh CSPRNG keys can never be re-derived, so resumption can never be
    // sound for them — structurally, such a session mints no ticket (and
    // `handshake_resuming` only accepts a ticket, which always has a seed).
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let client = EvaClient::connect(addr, None).unwrap();
    assert!(client.resumption_ticket().is_none());
    // The hash over the multi-megabyte key upload is skipped too: no seed,
    // no usable fingerprint.
    assert!(client.eval_key_fingerprint().is_none());
    client.finish().unwrap();
    let _ = server_thread.join().unwrap();
}

#[test]
fn server_rejects_missing_relin_key_and_bad_protocol() {
    use eva_service::{Message, PROTOCOL_VERSION};

    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    // Session 1: wrong protocol version (e.g. a PR-4 v1 client) is refused
    // with an Error message, not a framing failure.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        eva_service::protocol::write_message(
            &mut stream,
            &Message::Hello {
                protocol: PROTOCOL_VERSION + 1,
                resume: None,
            },
        )
        .unwrap();
        match eva_service::protocol::expect_message(&mut stream).unwrap() {
            Message::Error(msg) => assert!(msg.contains("protocol")),
            other => panic!("expected Error, got {other:?}"),
        }
    }
    // Session 2: withholding the relinearization key is refused.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        eva_service::protocol::write_message(
            &mut stream,
            &Message::Hello {
                protocol: PROTOCOL_VERSION,
                resume: None,
            },
        )
        .unwrap();
        let manifest = match eva_service::protocol::expect_message(&mut stream).unwrap() {
            Message::Manifest { manifest, .. } => *manifest,
            other => panic!("expected Manifest, got {other:?}"),
        };
        assert!(manifest.needs_relin);
        eva_service::protocol::write_message(
            &mut stream,
            &Message::EvalKeys {
                relin: None,
                galois: Box::new(eva_ckks::GaloisKeys::default()),
            },
        )
        .unwrap();
        match eva_service::protocol::expect_message(&mut stream).unwrap() {
            Message::Error(msg) => assert!(msg.contains("relinearization")),
            other => panic!("expected Error, got {other:?}"),
        }
    }
    let reports = server_thread.join().unwrap().unwrap();
    assert!(reports.iter().all(|r| r.is_err()));
}

#[test]
fn server_loads_a_compiled_program_bundle_from_disk() {
    // The `.evaprog` deployment artifact: compile once, ship the bundle,
    // serve it from the file.
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let path =
        std::env::temp_dir().join(format!("eva_service_test_{}.evaprog", std::process::id()));
    std::fs::write(&path, eva_core::serialize::compiled_to_bytes(&compiled)).unwrap();
    let server = EvaServer::from_program_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(server.manifest().name, "mixed");
    assert_eq!(server.compiled(), &compiled);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));
    let inputs = mixed_inputs();
    let reference = run_reference(&compiled.program, &inputs).unwrap();
    let mut client = EvaClient::connect(addr, Some(11)).unwrap();
    let outputs = client.evaluate(&inputs).unwrap();
    for (a, b) in outputs["out"].iter().zip(&reference["out"]) {
        assert!((a - b).abs() <= 1e-4);
    }
    client.finish().unwrap();
    server_thread.join().unwrap().unwrap();
}

#[test]
fn evaluating_with_wrong_input_names_is_a_clean_remote_error() {
    let compiled = compile(&mixed_program(), &CompilerOptions::default()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled).unwrap();
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let mut client = EvaClient::connect(addr, Some(5)).unwrap();
    let bogus: HashMap<String, Vec<f64>> =
        [("nonsense".to_string(), vec![1.0])].into_iter().collect();
    // The client refuses locally: the manifest says which inputs exist.
    assert!(client.evaluate(&bogus).is_err());
    drop(client);
    // The server sees a clean hang-up, not a crash.
    let _ = server_thread.join().unwrap();
}

/// Hoisted key-switching acceptance over the wire: Sobel's rotation
/// fan-outs execute hoisted on the server (shared RNS decomposition, one
/// Galois-key apply per member), and under the same deterministic handshake
/// the decrypted outputs are bit-identical to an in-process *unhoisted*
/// node-at-a-time execution — hoisting must not move a single bit, even
/// across the client/server boundary.
#[test]
fn hoisted_sobel_over_the_service_matches_unhoisted_in_process_bit_for_bit() {
    let program = eva_apps::image::sobel_program(16);
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let image: Vec<f64> = (0..256).map(|i| ((i % 17) as f64) / 17.0).collect();
    let inputs: HashMap<String, Vec<f64>> = [("image".to_string(), image)].into_iter().collect();
    let seed = 42u64;

    // In-process twin with hoisting out of the loop: every node individually
    // through `execute_node`, whose rotations take the sequential path.
    let mut in_process = EncryptedContext::setup(&compiled, Some(seed)).unwrap();
    let bindings = in_process.encrypt_inputs(&compiled, &inputs).unwrap();
    let prog = &compiled.program;
    let live = prog.live_mask();
    let mut values: Vec<Option<NodeValue>> = vec![None; prog.len()];
    for (id, v) in bindings {
        values[id] = Some(v);
    }
    for id in prog.topological_order() {
        if !live[id] {
            continue;
        }
        match &prog.node(id).kind {
            NodeKind::Input { .. } => {}
            NodeKind::Constant { value } => {
                values[id] = Some(NodeValue::Plain(value.to_vector(prog.vec_size())));
            }
            NodeKind::Instruction { args, .. } => {
                let arg_refs: Vec<&NodeValue> = args
                    .iter()
                    .map(|&a| values[a].as_ref().expect("parents computed first"))
                    .collect();
                values[id] = Some(in_process.execute_node(prog, id, &arg_refs).unwrap());
            }
        }
    }
    let unhoisted: HashMap<usize, NodeValue> = prog
        .outputs()
        .iter()
        .map(|o| (o.node, values[o.node].clone().unwrap()))
        .collect();
    let expected = in_process.decrypt_outputs(&compiled, &unhoisted).unwrap();

    // Client → (hoisted) server → client over a real socket, same seed.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled.clone()).unwrap().with_threads(2);
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));
    let stream = TcpStream::connect(addr).unwrap();
    let mut client = EvaClient::handshake_deterministic(stream, seed).unwrap();
    let outputs = client.evaluate(&inputs).unwrap();
    client.finish().unwrap();
    server_thread.join().unwrap().unwrap();

    for (name, expected_values) in &expected {
        let got = &outputs[name];
        for (i, (a, b)) in got.iter().zip(expected_values).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "output {name:?}[{i}]: hoisted service execution deviates from \
                 the unhoisted in-process twin"
            );
        }
    }
}

/// The optimizer acceptance contract, end-to-end over the service: the
/// structurally optimized (CSE + DCE) Sobel twin returns bit-identical
/// outputs to the unoptimized twin through real client/server evaluations
/// with the same deterministic handshake, and the fully optimized twin
/// (rotation factoring re-associates sums) agrees to working precision.
#[test]
fn optimized_sobel_twin_matches_unoptimized_over_the_service() {
    let program = eva_apps::image::sobel_program(16);
    let mut structural_options = CompilerOptions::default();
    structural_options.optimizer.rotation_min = false;

    let image: Vec<f64> = (0..256).map(|i| ((i % 17) as f64) / 17.0).collect();
    let inputs: HashMap<String, Vec<f64>> = [("image".to_string(), image)].into_iter().collect();
    let seed = 42u64;

    let serve = |compiled: eva_core::CompiledProgram| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = EvaServer::new(compiled).unwrap();
        let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = EvaClient::handshake_deterministic(stream, seed).unwrap();
        let outputs = client.evaluate(&inputs).unwrap();
        client.finish().unwrap();
        server_thread.join().unwrap().unwrap();
        outputs
    };

    let unopt = compile(&program, &CompilerOptions::unoptimized()).unwrap();
    let baseline = serve(unopt);
    let structural = compile(&program, &structural_options).unwrap();
    let structural_outputs = serve(structural);
    let full = compile(&program, &CompilerOptions::default()).unwrap();
    let full_outputs = serve(full);

    for (name, expected) in &baseline {
        for (i, (a, b)) in structural_outputs[name].iter().zip(expected).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "structural twin {name}[{i}]: {a} != {b}"
            );
        }
        for (a, b) in full_outputs[name].iter().zip(expected) {
            assert!(
                (a - b).abs() < 1e-2 * b.abs().max(1.0),
                "full twin {name}: {a} vs {b}"
            );
        }
    }
}
