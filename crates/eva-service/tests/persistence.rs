//! Tests for the disk-backed evaluation-key store layered under the
//! server's in-memory cache: warm resumption must survive a server restart
//! (zero key bytes re-uploaded), and a corrupt cache entry must be evicted
//! and fall back to a fresh upload — never trusted.

use std::collections::HashMap;
use std::fs;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use eva_core::{compile, CompilerOptions, Opcode, Program};
use eva_service::{
    bytes_with_tag, frame_index, EvaClient, EvaServer, RecordingStream, TAG_EVAL_KEYS,
};

/// Rotation + relinearization, so the key set is non-trivial.
fn rotating_program() -> Program {
    let mut p = Program::new("rotate-square", 16);
    let x = p.input_cipher("x", 30);
    let shifted = p.instruction(Opcode::RotateLeft(2), &[x]);
    let sum = p.instruction(Opcode::Add, &[x, shifted]);
    let sq = p.instruction(Opcode::Multiply, &[sum, sum]);
    p.output("out", sq, 30);
    p
}

fn rotating_inputs() -> HashMap<String, Vec<f64>> {
    [(
        "x".to_string(),
        (0..16).map(|i| (i as f64) / 16.0).collect::<Vec<_>>(),
    )]
    .into_iter()
    .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eva-persistence-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Tentpole: a cold session persists its keys to disk; after a full server
/// restart (fresh process state, same store directory) a resuming client
/// still gets a warm session — zero evaluation-key bytes on the wire, the
/// resumption served from disk, and bit-identical outputs.
#[test]
fn warm_resumption_survives_a_server_restart_via_the_disk_store() {
    let compiled = compile(&rotating_program(), &CompilerOptions::default()).unwrap();
    let inputs = rotating_inputs();
    let seed = 21u64;
    let dir = temp_dir("restart");

    // ---- Incarnation 1: cold session, keys written through to disk. ----
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled.clone())
        .unwrap()
        .with_key_store(&dir)
        .unwrap();
    let stats_one = server.clone();
    let thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let mut client = EvaClient::handshake_deterministic(stream, seed).unwrap();
    assert!(!client.resumed());
    let ticket = client.resumption_ticket().unwrap();
    let cold_outputs = client.evaluate(&inputs).unwrap();
    let stream = client.finish().unwrap();
    assert!(bytes_with_tag(stream.sent(), TAG_EVAL_KEYS).unwrap() > 100_000);
    thread.join().unwrap().unwrap();

    // The upload was persisted under its fingerprint, atomically.
    let store = stats_one.key_store().unwrap();
    assert_eq!(store.len(), 1);
    assert!(store.entry_path(&ticket.fingerprint).exists());
    assert_eq!(stats_one.stats().disk_resumptions, 0);

    // ---- Incarnation 2: a brand-new server over the same directory. ----
    // Its in-memory LRU starts empty; only the disk layer can warm it.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled)
        .unwrap()
        .with_key_store(&dir)
        .unwrap();
    let stats_two = server.clone();
    let thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let mut client = EvaClient::handshake_resuming_deterministic(stream, ticket).unwrap();
    assert!(client.resumed(), "restart must not forget cached keys");
    let warm_outputs = client.evaluate(&inputs).unwrap();
    let stream = client.finish().unwrap();

    // Zero evaluation-key bytes crossed the wire after the restart.
    let frames = frame_index(stream.sent()).unwrap();
    assert!(
        frames.iter().all(|&(tag, _)| tag != TAG_EVAL_KEYS),
        "post-restart session sent an EvalKeys frame: {frames:?}"
    );
    assert_eq!(bytes_with_tag(stream.sent(), TAG_EVAL_KEYS).unwrap(), 0);

    // Deterministic sessions are bit-identical, disk warm-up or not.
    for (name, cold) in &cold_outputs {
        for (a, b) in warm_outputs[name].iter().zip(cold) {
            assert_eq!(a.to_bits(), b.to_bits(), "output {name:?} deviates");
        }
    }

    // A second resumption on the *same* incarnation hits the in-memory
    // cache the disk load promoted into — the disk counter must not move.
    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let client = EvaClient::handshake_resuming_deterministic(stream, ticket).unwrap();
    assert!(client.resumed());
    client.finish().unwrap();
    thread.join().unwrap().unwrap();

    let stats = stats_two.stats();
    assert_eq!(stats.disk_resumptions, 1, "only the first lookup hits disk");
    assert_eq!(stats.resumed_sessions, 2);

    let _ = fs::remove_dir_all(&dir);
}

/// Tentpole: a corrupt on-disk entry fails fingerprint re-verification, is
/// evicted, and the session transparently falls back to a full upload —
/// which re-persists a good entry.
#[test]
fn corrupt_disk_entries_fall_back_to_upload_and_are_replaced() {
    let compiled = compile(&rotating_program(), &CompilerOptions::default()).unwrap();
    let inputs = rotating_inputs();
    let dir = temp_dir("corrupt");

    // Cold session to populate the store.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled.clone())
        .unwrap()
        .with_key_store(&dir)
        .unwrap();
    let handle = server.clone();
    let thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));
    let mut client = EvaClient::connect(addr, Some(33)).unwrap();
    let ticket = client.resumption_ticket().unwrap();
    client.evaluate(&inputs).unwrap();
    client.finish().unwrap();
    thread.join().unwrap().unwrap();

    // Bit-rot the stored entry between incarnations.
    let entry = handle.key_store().unwrap().entry_path(&ticket.fingerprint);
    let mut bytes = fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&entry, &bytes).unwrap();

    // Restart: the resuming handshake must NOT get the corrupt keys — the
    // server evicts the entry and asks for a fresh upload instead.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = EvaServer::new(compiled)
        .unwrap()
        .with_key_store(&dir)
        .unwrap();
    let handle = server.clone();
    let thread = std::thread::spawn(move || server.serve_sessions(&listener, 1));

    let stream = RecordingStream::new(TcpStream::connect(addr).unwrap());
    let mut client = EvaClient::handshake_resuming(stream, ticket).unwrap();
    assert!(!client.resumed(), "corrupt cache entries must not resume");
    let outputs = client.evaluate(&inputs).unwrap();
    assert!(outputs.contains_key("out"));
    let stream = client.finish().unwrap();
    assert!(
        bytes_with_tag(stream.sent(), TAG_EVAL_KEYS).unwrap() > 100_000,
        "the fallback session re-uploads its keys in full"
    );
    thread.join().unwrap().unwrap();

    let stats = handle.stats();
    assert_eq!(stats.disk_resumptions, 0);
    assert_eq!(stats.resumed_sessions, 0);
    // The fresh upload replaced the evicted entry with verified bytes.
    let store = handle.key_store().unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(
        store.load(&ticket.fingerprint).map(|p| p.len() > 100_000),
        Some(true)
    );

    let _ = fs::remove_dir_all(&dir);
}
