//! Reactor stress test: 64 simultaneous sessions multiplexed on one IO
//! thread, mixed cold and warm handshakes, every decrypted output
//! bit-identical to the in-process encrypted executor, nobody starved past
//! the read deadline and nothing panicking anywhere.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use eva_backend::{execute_parallel, EncryptedContext};
use eva_core::{compile, CompilerOptions, Opcode, Program};
use eva_service::{EvaClient, EvaServer};

const CONCURRENT_SESSIONS: usize = 64;
const EXECUTOR_THREADS: usize = 2;

/// A small rotation-free program (relinearization key only, no Galois
/// keys), so 64 cold handshakes stay cheap while still exercising real
/// ciphertext multiplication.
fn square_program() -> Program {
    let mut p = Program::new("square", 8);
    let x = p.input_cipher("x", 30);
    let sq = p.instruction(Opcode::Multiply, &[x, x]);
    p.output("out", sq, 30);
    p
}

/// Each seed group evaluates its own input vector, so a cross-session mixup
/// (wrong keys, wrong bindings, wrong completion routing) changes bits.
fn inputs_for_seed(seed: u64) -> HashMap<String, Vec<f64>> {
    let vals: Vec<f64> = (0..8)
        .map(|i| ((seed % 97) as f64) / 97.0 + (i as f64) / 16.0 - 0.5)
        .collect();
    [("x".to_string(), vals)].into_iter().collect()
}

/// The in-process encrypted baseline for one seed, per evaluation round:
/// each round draws further encryption randomness from the same
/// deterministic stream, exactly like a service client evaluating twice
/// over one session, so round r of a session compares against entry r.
fn expected_for_seed(
    compiled: &eva_core::CompiledProgram,
    seed: u64,
    rounds: usize,
) -> Vec<HashMap<String, Vec<f64>>> {
    let inputs = inputs_for_seed(seed);
    let mut ctx = EncryptedContext::setup(compiled, Some(seed)).unwrap();
    (0..rounds)
        .map(|_| {
            let bindings = ctx.encrypt_inputs(compiled, &inputs).unwrap();
            let values =
                execute_parallel(ctx.evaluation(), compiled, bindings, EXECUTOR_THREADS).unwrap();
            ctx.decrypt_outputs(compiled, &values).unwrap()
        })
        .collect()
}

fn assert_bit_identical(
    got: &HashMap<String, Vec<f64>>,
    expected: &HashMap<String, Vec<f64>>,
    what: &str,
) {
    for (name, expected_values) in expected {
        let got_values = &got[name];
        assert_eq!(got_values.len(), expected_values.len());
        for (i, (a, b)) in got_values.iter().zip(expected_values).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: output {name}[{i}] deviates from the in-process executor ({a} vs {b})"
            );
        }
    }
}

#[test]
fn sixty_four_concurrent_sessions_multiplex_without_starvation() {
    let compiled = compile(&square_program(), &CompilerOptions::default()).unwrap();

    // Seed groups: one warm seed every client in the warm half resumes, and
    // three cold seeds cycled through the cold half. One in-process baseline
    // per seed is enough for bit-identity across all 64 sessions.
    let warm_seed = 500u64;
    let cold_seeds = [1001u64, 1002, 1003];
    let mut expected: HashMap<u64, Vec<HashMap<String, Vec<f64>>>> = HashMap::new();
    for seed in cold_seeds.iter().copied().chain([warm_seed]) {
        expected.insert(seed, expected_for_seed(&compiled, seed, 2));
    }
    let expected = Arc::new(expected);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // max_sessions defaults to exactly 64: every concurrent session must be
    // admitted (a single busy rejection fails the reports check below).
    let server = EvaServer::new(compiled)
        .unwrap()
        .with_threads(EXECUTOR_THREADS);
    let server_for_thread = server.clone();
    let server_thread = std::thread::spawn(move || {
        server_for_thread.serve_sessions(&listener, CONCURRENT_SESSIONS + 1)
    });

    // Priming session: one cold deterministic handshake with the warm seed,
    // so the concurrent warm half has cached keys to resume.
    let ticket = {
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = EvaClient::handshake_deterministic(stream, warm_seed).unwrap();
        let outputs = client.evaluate(&inputs_for_seed(warm_seed)).unwrap();
        assert_bit_identical(&outputs, &expected[&warm_seed][0], "priming session");
        let ticket = client.resumption_ticket().unwrap();
        client.finish().unwrap();
        ticket
    };

    // 64 simultaneous sessions, released together: even indices resume the
    // cached keys (warm), odd indices run full cold handshakes with their
    // own seeds. Sessions alternate one and two evaluation rounds.
    let barrier = Arc::new(Barrier::new(CONCURRENT_SESSIONS));
    let started = Instant::now();
    let mut handles = Vec::new();
    for i in 0..CONCURRENT_SESSIONS {
        let barrier = Arc::clone(&barrier);
        let expected = Arc::clone(&expected);
        handles.push(std::thread::spawn(move || {
            let warm = i % 2 == 0;
            let seed = if warm {
                warm_seed
            } else {
                cold_seeds[(i / 2) % cold_seeds.len()]
            };
            let rounds = 1 + i % 2;
            barrier.wait();
            let stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).ok();
            let mut client = if warm {
                EvaClient::handshake_resuming_deterministic(stream, ticket).unwrap()
            } else {
                EvaClient::handshake_deterministic(stream, seed).unwrap()
            };
            assert_eq!(client.resumed(), warm, "session {i} handshake mode");
            let inputs = inputs_for_seed(seed);
            for round in 0..rounds {
                let outputs = client.evaluate(&inputs).unwrap();
                assert_bit_identical(
                    &outputs,
                    &expected[&seed][round],
                    &format!("session {i} round {round}"),
                );
            }
            client.finish().unwrap();
            rounds
        }));
    }
    let mut total_rounds = 1usize; // the priming session's round
    for handle in handles {
        total_rounds += handle.join().expect("session thread panicked");
    }
    let elapsed = started.elapsed();

    let reports = server_thread.join().unwrap().unwrap();
    assert_eq!(reports.len(), CONCURRENT_SESSIONS + 1);
    let reports: Vec<_> = reports
        .into_iter()
        .map(|r| r.expect("session report"))
        .collect();
    let resumed = reports.iter().filter(|r| r.resumed).count();
    assert_eq!(resumed, CONCURRENT_SESSIONS / 2, "warm half resumed");
    let evaluations: usize = reports.iter().map(|r| r.evaluations).sum();
    assert_eq!(evaluations, total_rounds);

    // Starvation check: the multiplexer served everyone well inside the
    // 30-second per-message read deadline — no session sat unread long
    // enough to trip it (a starved session would have failed its unwrap
    // above with a deadline error anyway).
    let deadline = eva_service::ServerConfig::default()
        .read_deadline
        .expect("default config has a read deadline");
    assert!(
        elapsed < deadline,
        "concurrent phase took {elapsed:?}, past the {deadline:?} deadline"
    );

    let stats = server.stats();
    assert_eq!(stats.sessions_started, CONCURRENT_SESSIONS as u64 + 1);
    assert_eq!(stats.sessions_completed, CONCURRENT_SESSIONS as u64 + 1);
    assert_eq!(stats.sessions_failed, 0);
    assert_eq!(stats.session_panics, 0, "nothing may panic under load");
    assert_eq!(stats.busy_rejections, 0, "all 64 sessions fit the limit");
    assert_eq!(stats.evaluations, total_rounds as u64);
    assert_eq!(stats.queue_depth, 0, "scheduler queue drained");
    assert_eq!(stats.jobs_inflight, 0, "no evaluation left running");
}
