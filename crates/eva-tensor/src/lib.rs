//! # eva-tensor — a CHET-like neural-network compiler targeting EVA
//!
//! The paper re-targets CHET, a domain-specific compiler for homomorphic
//! neural-network inference, onto EVA (Section 7.2): tensor kernels emit EVA
//! instructions instead of calling SEAL directly, and EVA's global passes
//! replace CHET's per-kernel insertion of FHE-specific instructions.
//!
//! This crate provides the pieces that comparison needs:
//!
//! * [`tensor`] — plaintext tensors and reference (unencrypted) inference;
//! * [`networks`] — the five evaluation networks of Table 3, rebuilt at
//!   laptop scale with seeded random weights (see DESIGN.md substitutions);
//! * [`lower`] — the kernel library that lowers a network onto an EVA
//!   program, in either EVA mode (mixed scales, global compiler passes) or
//!   CHET-baseline mode (uniform scaling factor, rescale after every multiply,
//!   lazy mod-switching).
//!
//! ```
//! use eva_tensor::{lower_network, LoweringMode, networks::lenet5_small};
//!
//! let network = lenet5_small(42);
//! let lowered = lower_network(&network, LoweringMode::Eva);
//! let compiled = lowered.compile().unwrap();
//! assert!(compiled.parameters.chain_length() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lower;
pub mod networks;
pub mod tensor;

pub use lower::{
    lower_network, lower_network_with_scales, pack_input, vector_size_for, LayoutView,
    LoweredNetwork, LoweringMode, ScaleConfig,
};
pub use networks::{all_networks, Layer, LayerCounts, Network};
pub use tensor::{ConvWeights, FcWeights, Tensor};
