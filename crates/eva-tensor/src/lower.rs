//! Lowering tensor networks onto the EVA language: the kernel library of the
//! CHET-style frontend (paper Section 7.2).
//!
//! Every activation tensor is packed into a single ciphertext in CHW order
//! (padded to a power of two). Convolutions and poolings are computed with
//! the standard rotate-multiply-accumulate SIMD kernels; strided layouts are
//! tracked in a [`LayoutView`] (this is the data-layout bookkeeping CHET's
//! layout selection performs — we use its CHW choice, as the paper does for
//! the comparison). Fully-connected layers use mask-and-reduce dot products.
//!
//! Two lowering modes are provided:
//!
//! * [`LoweringMode::Eva`] — emit pure arithmetic and let the EVA compiler
//!   insert RESCALE/MODSWITCH globally (the paper's approach);
//! * [`LoweringMode::ChetBaseline`] — model CHET: a single uniform scaling
//!   factor for data and weights, compiled with the ALWAYS-RESCALE +
//!   LAZY-MODSWITCH strategies, i.e. one rescale after every multiplication
//!   exactly as CHET's per-kernel expert implementations do.

use eva_core::{
    compile, CompiledProgram, CompilerOptions, EvaError, ModSwitchStrategy, Program,
    RescaleStrategy,
};
use eva_frontend::{Expr, ProgramBuilder};

use crate::networks::{Layer, Network};

/// Which compiler/lowering strategy to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoweringMode {
    /// EVA: mixed scales and global insertion of FHE-specific instructions.
    Eva,
    /// CHET baseline: uniform scaling factor, rescale after every multiply,
    /// lazy modulus switching.
    ChetBaseline,
}

/// Fixed-point scales used when lowering a network (the paper's Table 4
/// "Input Scale" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Scale of the encrypted image input (bits).
    pub cipher: u32,
    /// Scale of plaintext weight vectors (bits).
    pub vector: u32,
    /// Scale of plaintext scalars (bits).
    pub scalar: u32,
    /// Desired scale of the output (bits).
    pub output: u32,
}

impl ScaleConfig {
    /// The scales the paper uses for most networks in EVA mode
    /// (cipher 25, vector 15, scalar 10, output 30).
    pub fn eva_default() -> Self {
        Self {
            cipher: 25,
            vector: 15,
            scalar: 10,
            output: 30,
        }
    }

    /// A single uniform scaling factor, as CHET uses (40 bits everywhere).
    pub fn chet_default() -> Self {
        Self {
            cipher: 40,
            vector: 40,
            scalar: 40,
            output: 40,
        }
    }
}

/// A strided view describing where the logical tensor elements live inside the
/// packed ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutView {
    /// Logical channels.
    pub channels: usize,
    /// Logical height.
    pub height: usize,
    /// Logical width.
    pub width: usize,
    /// Physical distance between consecutive channels.
    pub channel_stride: usize,
    /// Physical distance between consecutive rows.
    pub row_stride: usize,
    /// Physical distance between consecutive columns.
    pub col_stride: usize,
}

impl LayoutView {
    fn physical(&self, c: usize, i: usize, j: usize) -> usize {
        c * self.channel_stride + i * self.row_stride + j * self.col_stride
    }

    fn logical_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// A network lowered to an EVA input program, ready for compilation.
#[derive(Debug, Clone)]
pub struct LoweredNetwork {
    /// The generated EVA input program.
    pub program: Program,
    /// Name of the encrypted image input.
    pub input_name: String,
    /// Name of the logits output.
    pub output_name: String,
    /// Slot index of each logit inside the output vector.
    pub output_positions: Vec<usize>,
    /// The lowering mode used.
    pub mode: LoweringMode,
    /// The scales used.
    pub scales: ScaleConfig,
}

impl LoweredNetwork {
    /// Compiles the lowered program with the compiler options matching the
    /// lowering mode (EVA: waterline + eager; CHET: always + lazy).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    pub fn compile(&self) -> Result<CompiledProgram, EvaError> {
        let options = match self.mode {
            LoweringMode::Eva => CompilerOptions::default(),
            LoweringMode::ChetBaseline => CompilerOptions {
                rescale: RescaleStrategy::Always,
                mod_switch: ModSwitchStrategy::Lazy,
                ..CompilerOptions::default()
            },
        };
        compile(&self.program, &options)
    }

    /// Extracts the logits from a decrypted output vector.
    pub fn extract_logits(&self, output: &[f64]) -> Vec<f64> {
        self.output_positions.iter().map(|&p| output[p]).collect()
    }
}

/// Packs a plaintext CHW tensor into the flat vector layout used by the
/// lowered program (so callers can feed the encrypted input).
pub fn pack_input(tensor: &crate::tensor::Tensor, vec_size: usize) -> Vec<f64> {
    let mut packed = vec![0.0; vec_size];
    packed[..tensor.data.len()].copy_from_slice(&tensor.data);
    packed
}

/// The ciphertext vector size a network needs: enough room for the widest
/// layer at the input's spatial footprint, rounded up to a power of two.
pub fn vector_size_for(network: &Network) -> usize {
    let (c_in, h, w) = network.input_shape;
    let footprint = h * w;
    let mut max_channels = c_in;
    for layer in &network.layers {
        match layer {
            Layer::Conv(conv) => max_channels = max_channels.max(conv.out_channels),
            Layer::FullyConnected(fc) => max_channels = max_channels.max(fc.out_dim),
            _ => {}
        }
    }
    (max_channels * footprint).next_power_of_two()
}

/// Lowers a network into an EVA input program.
pub fn lower_network(network: &Network, mode: LoweringMode) -> LoweredNetwork {
    let scales = match mode {
        LoweringMode::Eva => ScaleConfig::eva_default(),
        LoweringMode::ChetBaseline => ScaleConfig::chet_default(),
    };
    lower_network_with_scales(network, mode, scales)
}

/// Lowers a network with explicit scales.
pub fn lower_network_with_scales(
    network: &Network,
    mode: LoweringMode,
    scales: ScaleConfig,
) -> LoweredNetwork {
    let vec_size = vector_size_for(network);
    let mut builder = ProgramBuilder::with_default_scale(&network.name, vec_size, scales.scalar);
    let input_name = "image".to_string();
    let output_name = "logits".to_string();

    let (c, h, w) = network.input_shape;
    let mut layout = LayoutView {
        channels: c,
        height: h,
        width: w,
        channel_stride: h * w,
        row_stride: w,
        col_stride: 1,
    };
    let mut current = builder.input_cipher(&input_name, scales.cipher);

    for layer in &network.layers {
        match layer {
            Layer::Conv(conv) => {
                let (expr, new_layout) = lower_conv(
                    &mut builder,
                    &current,
                    layout,
                    conv,
                    vec_size,
                    scales.vector,
                );
                current = expr;
                layout = new_layout;
            }
            Layer::AvgPool { window } => {
                let (expr, new_layout) = lower_pool(
                    &mut builder,
                    &current,
                    layout,
                    *window,
                    vec_size,
                    scales.vector,
                );
                current = expr;
                layout = new_layout;
            }
            Layer::Activation { a, b, c } => {
                current = lower_activation(&mut builder, &current, *a, *b, *c, scales.vector);
            }
            Layer::FullyConnected(fc) => {
                let (expr, new_layout) =
                    lower_fc(&mut builder, &current, layout, fc, vec_size, scales.vector);
                current = expr;
                layout = new_layout;
            }
        }
    }

    // Output logit positions under the final layout.
    let mut output_positions = Vec::new();
    for c in 0..layout.channels {
        for i in 0..layout.height {
            for j in 0..layout.width {
                output_positions.push(layout.physical(c, i, j));
            }
        }
    }
    builder.output(&output_name, current, scales.output);
    LoweredNetwork {
        program: builder.build(),
        input_name,
        output_name,
        output_positions,
        mode,
        scales,
    }
}

fn lower_conv(
    builder: &mut ProgramBuilder,
    input: &Expr,
    layout: LayoutView,
    conv: &crate::tensor::ConvWeights,
    vec_size: usize,
    weight_scale: u32,
) -> (Expr, LayoutView) {
    let out_h = layout.height - conv.kernel + 1;
    let out_w = layout.width - conv.kernel + 1;
    let out_channels = conv.out_channels;
    let in_channels = layout.channels;
    let mut acc: Option<Expr> = None;

    let min_delta = -(out_channels as isize - 1);
    let max_delta = in_channels as isize - 1;
    for delta in min_delta..=max_delta {
        for di in 0..conv.kernel {
            for dj in 0..conv.kernel {
                let mut mask = vec![0.0; vec_size];
                let mut any = false;
                for f in 0..out_channels {
                    let c = f as isize + delta;
                    if c < 0 || c >= in_channels as isize {
                        continue;
                    }
                    let value = conv.weight(f, c as usize, di, dj);
                    if value == 0.0 {
                        continue;
                    }
                    for i in 0..out_h {
                        for j in 0..out_w {
                            mask[layout.physical(f, i, j)] = value;
                            any = true;
                        }
                    }
                }
                if !any {
                    continue;
                }
                let offset = delta * layout.channel_stride as isize
                    + di as isize * layout.row_stride as isize
                    + dj as isize * layout.col_stride as isize;
                let rotated = input.rotate_left(offset as i32);
                let weights = builder.constant_vector(mask, weight_scale);
                let term = &rotated * &weights;
                acc = Some(match acc {
                    None => term,
                    Some(acc) => acc + term,
                });
            }
        }
    }

    // Bias: a plaintext vector added at the bias positions; the compiler's
    // MATCH-SCALE pass reconciles its scale with the accumulated product.
    let mut bias_mask = vec![0.0; vec_size];
    for f in 0..out_channels {
        for i in 0..out_h {
            for j in 0..out_w {
                bias_mask[layout.physical(f, i, j)] = conv.bias[f];
            }
        }
    }
    let bias = builder.constant_vector(bias_mask, weight_scale);
    let result = acc.expect("convolution has at least one nonzero weight") + bias;

    let new_layout = LayoutView {
        channels: out_channels,
        height: out_h,
        width: out_w,
        ..layout
    };
    (result, new_layout)
}

fn lower_pool(
    builder: &mut ProgramBuilder,
    input: &Expr,
    layout: LayoutView,
    window: usize,
    vec_size: usize,
    weight_scale: u32,
) -> (Expr, LayoutView) {
    let out_h = layout.height / window;
    let out_w = layout.width / window;
    let mut acc: Option<Expr> = None;
    for di in 0..window {
        for dj in 0..window {
            let offset =
                di as isize * layout.row_stride as isize + dj as isize * layout.col_stride as isize;
            let rotated = if offset == 0 {
                input.clone()
            } else {
                input.rotate_left(offset as i32)
            };
            acc = Some(match acc {
                None => rotated,
                Some(acc) => acc + rotated,
            });
        }
    }
    // Normalize and keep only the anchor positions of the pooled grid.
    let norm = 1.0 / (window * window) as f64;
    let mut mask = vec![0.0; vec_size];
    for c in 0..layout.channels {
        for i in 0..out_h {
            for j in 0..out_w {
                mask[layout.physical(c, i * window, j * window)] = norm;
            }
        }
    }
    let mask = builder.constant_vector(mask, weight_scale);
    let result = acc.expect("pooling window is non-empty") * mask;
    let new_layout = LayoutView {
        channels: layout.channels,
        height: out_h,
        width: out_w,
        channel_stride: layout.channel_stride,
        row_stride: layout.row_stride * window,
        col_stride: layout.col_stride * window,
    };
    (result, new_layout)
}

fn lower_activation(
    builder: &mut ProgramBuilder,
    input: &Expr,
    a: f64,
    b: f64,
    c: f64,
    weight_scale: u32,
) -> Expr {
    let squared = input * input;
    let mut result = &squared * &builder.constant_scalar(a, weight_scale);
    if b != 0.0 {
        result = result + input * &builder.constant_scalar(b, weight_scale);
    }
    if c != 0.0 {
        result = result + builder.constant_scalar(c, weight_scale);
    }
    result
}

fn lower_fc(
    builder: &mut ProgramBuilder,
    input: &Expr,
    layout: LayoutView,
    fc: &crate::tensor::FcWeights,
    vec_size: usize,
    weight_scale: u32,
) -> (Expr, LayoutView) {
    assert_eq!(
        layout.logical_len(),
        fc.in_dim,
        "fully-connected input size mismatch"
    );
    // Logical flattening order must match the plaintext reference (CHW).
    let mut physical_of_logical = Vec::with_capacity(fc.in_dim);
    for c in 0..layout.channels {
        for i in 0..layout.height {
            for j in 0..layout.width {
                physical_of_logical.push(layout.physical(c, i, j));
            }
        }
    }

    let mut result: Option<Expr> = None;
    for o in 0..fc.out_dim {
        // Dot product: mask with the o-th weight row, then sum-reduce all slots.
        let mut mask = vec![0.0; vec_size];
        for (t, &phys) in physical_of_logical.iter().enumerate() {
            mask[phys] = fc.weights[o * fc.in_dim + t];
        }
        let weights = builder.constant_vector(mask, weight_scale);
        let mut acc = input * &weights;
        let mut shift = 1usize;
        while shift < vec_size {
            acc = &acc + &acc.rotate_left(shift as i32);
            shift <<= 1;
        }
        // Keep the sum (plus bias) only at slot `o`.
        let mut unit = vec![0.0; vec_size];
        unit[o] = 1.0;
        let unit = builder.constant_vector(unit, weight_scale);
        let mut picked = acc * unit;
        if fc.bias[o] != 0.0 {
            let mut bias_mask = vec![0.0; vec_size];
            bias_mask[o] = fc.bias[o];
            let bias = builder.constant_vector(bias_mask, weight_scale);
            picked = picked + bias;
        }
        result = Some(match result {
            None => picked,
            Some(acc) => acc + picked,
        });
    }

    let new_layout = LayoutView {
        channels: fc.out_dim,
        height: 1,
        width: 1,
        channel_stride: 1,
        row_stride: 1,
        col_stride: 1,
    };
    (
        result.expect("fully-connected layer has outputs"),
        new_layout,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks::{lenet5_small, Layer, Network};
    use crate::tensor::{ConvWeights, FcWeights, Tensor};
    use eva_backend::run_reference;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    /// Lower a network, execute the EVA program under reference semantics and
    /// compare the logits with plaintext tensor inference.
    fn check_reference_equivalence(network: &Network, input: &Tensor, tolerance: f64) {
        let lowered = lower_network(network, LoweringMode::Eva);
        let vec_size = lowered.program.vec_size();
        let packed = pack_input(input, vec_size);
        let inputs: HashMap<String, Vec<f64>> =
            [(lowered.input_name.clone(), packed)].into_iter().collect();
        let outputs = run_reference(&lowered.program, &inputs).unwrap();
        let logits = lowered.extract_logits(&outputs[&lowered.output_name]);
        let expected = network.infer_plain(input);
        assert_eq!(logits.len(), expected.len());
        for (i, (a, b)) in logits.iter().zip(&expected).enumerate() {
            assert!(
                (a - b).abs() < tolerance,
                "logit {i}: lowered {a} vs plain {b}"
            );
        }
    }

    fn random_input(shape: (usize, usize, usize), seed: u64) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (c, h, w) = shape;
        Tensor::from_data(
            c,
            h,
            w,
            (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn single_conv_layer_matches_plain_inference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let conv = ConvWeights {
            out_channels: 2,
            in_channels: 1,
            kernel: 2,
            weights: (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            bias: vec![0.25, -0.5],
        };
        let network = Network {
            name: "conv_only".into(),
            input_shape: (1, 4, 4),
            layers: vec![Layer::Conv(conv)],
        };
        check_reference_equivalence(&network, &random_input((1, 4, 4), 4), 1e-9);
    }

    #[test]
    fn conv_pool_activation_fc_pipeline_matches_plain_inference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let conv = ConvWeights {
            out_channels: 2,
            in_channels: 1,
            kernel: 3,
            weights: (0..18).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            bias: vec![0.1, -0.1],
        };
        let fc = FcWeights {
            out_dim: 3,
            in_dim: 2 * 3 * 3,
            weights: (0..54).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            bias: vec![0.0, 0.5, -0.25],
        };
        let network = Network {
            name: "mini".into(),
            input_shape: (1, 8, 8),
            layers: vec![
                Layer::Conv(conv),
                Layer::Activation {
                    a: 1.0,
                    b: 1.0,
                    c: 0.0,
                },
                Layer::AvgPool { window: 2 },
                Layer::FullyConnected(fc),
            ],
        };
        check_reference_equivalence(&network, &random_input((1, 8, 8), 6), 1e-9);
    }

    #[test]
    fn lenet_small_lowering_matches_plain_inference() {
        let network = lenet5_small(11);
        check_reference_equivalence(&network, &random_input((1, 8, 8), 12), 1e-6);
    }

    #[test]
    fn lowering_modes_share_structure_but_differ_in_scales() {
        let network = lenet5_small(13);
        let eva = lower_network(&network, LoweringMode::Eva);
        let chet = lower_network(&network, LoweringMode::ChetBaseline);
        assert_eq!(eva.program.len(), chet.program.len());
        assert_eq!(eva.scales, ScaleConfig::eva_default());
        assert_eq!(chet.scales, ScaleConfig::chet_default());
    }

    #[test]
    fn chet_baseline_selects_larger_parameters_than_eva() {
        // The headline of the paper's Table 6: EVA's global placement yields a
        // shorter modulus chain and smaller Q than CHET's per-kernel policy.
        let network = lenet5_small(17);
        let eva = lower_network(&network, LoweringMode::Eva)
            .compile()
            .unwrap();
        let chet = lower_network(&network, LoweringMode::ChetBaseline)
            .compile()
            .unwrap();
        assert!(
            eva.parameters.chain_length() < chet.parameters.chain_length(),
            "EVA r = {} should be below CHET r = {}",
            eva.parameters.chain_length(),
            chet.parameters.chain_length()
        );
        assert!(eva.parameters.total_bits() < chet.parameters.total_bits());
        assert!(eva.parameters.degree <= chet.parameters.degree);
    }
}
