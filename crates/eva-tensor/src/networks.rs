//! Network descriptions: the five architectures of the paper's Table 3,
//! rebuilt at laptop scale.
//!
//! The paper evaluates LeNet-5 variants on MNIST, a proprietary "Industrial"
//! network and a SqueezeNet variant on CIFAR-10. Neither the trained models
//! nor the datasets are available here (the paper itself uses random weights
//! for Industrial), so every network keeps the *layer structure* of Table 3
//! (number of convolutions, fully-connected layers and activations) with
//! reduced image sizes and channel counts, and uses seeded random weights in
//! `[-1, 1]`. See DESIGN.md for the substitution rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::{
    avg_pool, conv2d, fully_connected, poly_activation, ConvWeights, FcWeights, Tensor,
};

/// One layer of a network.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Valid (no padding), stride-1 convolution.
    Conv(ConvWeights),
    /// Average pooling with a square window and matching stride.
    AvgPool {
        /// Window (and stride) size.
        window: usize,
    },
    /// Polynomial activation `a*x^2 + b*x + c` (FHE-compatible replacement for
    /// ReLU, as in CHET).
    Activation {
        /// Quadratic coefficient.
        a: f64,
        /// Linear coefficient.
        b: f64,
        /// Constant coefficient.
        c: f64,
    },
    /// Fully-connected layer over the flattened CHW input.
    FullyConnected(FcWeights),
}

/// A feed-forward network: an input shape plus a layer list.
#[derive(Debug, Clone)]
pub struct Network {
    /// Human-readable name (matches the paper's Table 3 rows).
    pub name: String,
    /// Input shape (channels, height, width).
    pub input_shape: (usize, usize, usize),
    /// The layers in execution order.
    pub layers: Vec<Layer>,
}

/// Per-network layer counts, mirroring the columns of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCounts {
    /// Number of convolutions.
    pub conv: usize,
    /// Number of fully-connected layers.
    pub fc: usize,
    /// Number of polynomial activations.
    pub act: usize,
}

impl Network {
    /// Runs unencrypted inference and returns the logits.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the network's declared shape.
    pub fn infer_plain(&self, input: &Tensor) -> Vec<f64> {
        assert_eq!(
            (input.channels, input.height, input.width),
            self.input_shape,
            "input shape mismatch"
        );
        let mut current = input.clone();
        for layer in &self.layers {
            match layer {
                Layer::Conv(w) => current = conv2d(&current, w),
                Layer::AvgPool { window } => current = avg_pool(&current, *window),
                Layer::Activation { a, b, c } => current = poly_activation(&current, *a, *b, *c),
                Layer::FullyConnected(w) => {
                    let out = fully_connected(&current, w);
                    current = Tensor::from_data(out.len(), 1, 1, out);
                }
            }
        }
        current.data
    }

    /// Layer counts as reported in Table 3.
    pub fn layer_counts(&self) -> LayerCounts {
        let mut counts = LayerCounts {
            conv: 0,
            fc: 0,
            act: 0,
        };
        for layer in &self.layers {
            match layer {
                Layer::Conv(_) => counts.conv += 1,
                Layer::FullyConnected(_) => counts.fc += 1,
                Layer::Activation { .. } => counts.act += 1,
                Layer::AvgPool { .. } => {}
            }
        }
        counts
    }

    /// Approximate floating-point operation count of one unencrypted
    /// inference (the paper's "# FP operations" column).
    pub fn flop_count(&self) -> usize {
        let (mut c, mut h, mut w) = self.input_shape;
        let mut flops = 0usize;
        for layer in &self.layers {
            match layer {
                Layer::Conv(conv) => {
                    let out_h = h - conv.kernel + 1;
                    let out_w = w - conv.kernel + 1;
                    flops += 2
                        * conv.out_channels
                        * conv.in_channels
                        * conv.kernel
                        * conv.kernel
                        * out_h
                        * out_w;
                    c = conv.out_channels;
                    h = out_h;
                    w = out_w;
                }
                Layer::AvgPool { window } => {
                    flops += c * h * w;
                    h /= window;
                    w /= window;
                }
                Layer::Activation { .. } => {
                    flops += 3 * c * h * w;
                }
                Layer::FullyConnected(fc) => {
                    flops += 2 * fc.out_dim * fc.in_dim;
                    c = fc.out_dim;
                    h = 1;
                    w = 1;
                }
            }
        }
        flops
    }

    /// Number of logits the network produces.
    pub fn output_count(&self) -> usize {
        let (mut c, mut h, mut w) = self.input_shape;
        for layer in &self.layers {
            match layer {
                Layer::Conv(conv) => {
                    c = conv.out_channels;
                    h = h - conv.kernel + 1;
                    w = w - conv.kernel + 1;
                }
                Layer::AvgPool { window } => {
                    h /= window;
                    w /= window;
                }
                Layer::FullyConnected(fc) => {
                    c = fc.out_dim;
                    h = 1;
                    w = 1;
                }
                Layer::Activation { .. } => {}
            }
        }
        c * h * w
    }
}

fn random_conv(
    rng: &mut StdRng,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
) -> ConvWeights {
    // Weights are L1-normalized per output so activations stay in [-1, 1]
    // throughout the network: with random (untrained) weights the paper's
    // deeper networks would otherwise overflow after a few squaring
    // activations. Trained models are implicitly regularized the same way.
    let fan_in = (in_channels * kernel * kernel) as f64;
    ConvWeights {
        out_channels,
        in_channels,
        kernel,
        weights: (0..out_channels * in_channels * kernel * kernel)
            .map(|_| rng.gen_range(-1.0..1.0) / fan_in)
            .collect(),
        bias: (0..out_channels)
            .map(|_| rng.gen_range(-0.05..0.05))
            .collect(),
    }
}

fn random_fc(rng: &mut StdRng, in_dim: usize, out_dim: usize) -> FcWeights {
    FcWeights {
        out_dim,
        in_dim,
        weights: (0..out_dim * in_dim)
            .map(|_| rng.gen_range(-1.0..1.0) / in_dim as f64)
            .collect(),
        bias: (0..out_dim).map(|_| rng.gen_range(-0.05..0.05)).collect(),
    }
}

fn activation() -> Layer {
    // 0.5 x^2 + 0.5 x: a CHET-style polynomial replacement for ReLU whose
    // output stays in [-1, 1] whenever its input does, keeping untrained
    // networks numerically bounded at any depth.
    Layer::Activation {
        a: 0.5,
        b: 0.5,
        c: 0.0,
    }
}

/// LeNet-5-small: 2 convolutions, 2 fully-connected layers, 4 activations.
pub fn lenet5_small(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let conv1 = random_conv(&mut rng, 1, 4, 3); // 8x8 -> 6x6
    let conv2 = random_conv(&mut rng, 4, 8, 2); // 3x3 -> 2x2
    let fc1 = random_fc(&mut rng, 8, 16); // after 2x2 pooling -> 8x1x1
    let fc2 = random_fc(&mut rng, 16, 10);
    Network {
        name: "LeNet-5-small".into(),
        input_shape: (1, 8, 8),
        layers: vec![
            Layer::Conv(conv1),
            activation(),
            Layer::AvgPool { window: 2 },
            Layer::Conv(conv2),
            activation(),
            Layer::AvgPool { window: 2 },
            Layer::FullyConnected(fc1),
            activation(),
            Layer::FullyConnected(fc2),
            activation(),
        ],
    }
}

/// LeNet-5-medium: same structure as small with more channels and a larger image.
pub fn lenet5_medium(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let conv1 = random_conv(&mut rng, 1, 6, 3); // 16x16 -> 14x14
    let conv2 = random_conv(&mut rng, 6, 12, 3); // 7x7 -> 5x5
    let fc1 = random_fc(&mut rng, 12 * 2 * 2, 32);
    let fc2 = random_fc(&mut rng, 32, 10);
    Network {
        name: "LeNet-5-medium".into(),
        input_shape: (1, 16, 16),
        layers: vec![
            Layer::Conv(conv1),
            activation(),
            Layer::AvgPool { window: 2 },
            Layer::Conv(conv2),
            activation(),
            Layer::AvgPool { window: 2 },
            Layer::FullyConnected(fc1),
            activation(),
            Layer::FullyConnected(fc2),
            activation(),
        ],
    }
}

/// LeNet-5-large: same structure again with the largest channel counts.
pub fn lenet5_large(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let conv1 = random_conv(&mut rng, 1, 8, 3); // 16x16 -> 14x14
    let conv2 = random_conv(&mut rng, 8, 16, 3); // 7x7 -> 5x5
    let fc1 = random_fc(&mut rng, 16 * 2 * 2, 64);
    let fc2 = random_fc(&mut rng, 64, 10);
    Network {
        name: "LeNet-5-large".into(),
        input_shape: (1, 16, 16),
        layers: vec![
            Layer::Conv(conv1),
            activation(),
            Layer::AvgPool { window: 2 },
            Layer::Conv(conv2),
            activation(),
            Layer::AvgPool { window: 2 },
            Layer::FullyConnected(fc1),
            activation(),
            Layer::FullyConnected(fc2),
            activation(),
        ],
    }
}

/// Industrial: 5 convolutions, 2 fully-connected layers, 6 activations
/// (binary classifier), evaluated with random weights exactly as in the paper.
pub fn industrial(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers = Vec::new();
    let mut channels = 1;
    // Five 2x2 convolutions shrink an 8x8 image to 3x3.
    for _ in 0..5 {
        let conv = random_conv(&mut rng, channels, 4, 2);
        channels = 4;
        layers.push(Layer::Conv(conv));
        layers.push(activation());
    }
    let fc1 = random_fc(&mut rng, channels * 3 * 3, 16);
    layers.push(Layer::FullyConnected(fc1));
    layers.push(activation());
    let fc2 = random_fc(&mut rng, 16, 2);
    layers.push(Layer::FullyConnected(fc2));
    Network {
        name: "Industrial".into(),
        input_shape: (1, 8, 8),
        layers,
    }
}

/// SqueezeNet-CIFAR: 10 convolutions, no fully-connected layers, 9
/// activations, ending in global average pooling over 10 output channels.
pub fn squeezenet_cifar(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers = Vec::new();
    // Stem convolution: 3x8x8 -> 4x6x6.
    layers.push(Layer::Conv(random_conv(&mut rng, 3, 4, 3)));
    layers.push(activation());
    let mut channels = 4;
    // Four simplified fire modules: squeeze (1x1) then expand (1x1).
    for _ in 0..4 {
        layers.push(Layer::Conv(random_conv(&mut rng, channels, 2, 1)));
        layers.push(activation());
        layers.push(Layer::Conv(random_conv(&mut rng, 2, 4, 1)));
        layers.push(activation());
        channels = 4;
    }
    // Classifier convolution to 10 channels followed by global average pooling.
    layers.push(Layer::Conv(random_conv(&mut rng, channels, 10, 1)));
    layers.push(Layer::AvgPool { window: 6 });
    Network {
        name: "SqueezeNet-CIFAR".into(),
        input_shape: (3, 8, 8),
        layers,
    }
}

/// All five evaluation networks in the order of the paper's tables.
pub fn all_networks(seed: u64) -> Vec<Network> {
    vec![
        lenet5_small(seed),
        lenet5_medium(seed + 1),
        lenet5_large(seed + 2),
        industrial(seed + 3),
        squeezenet_cifar(seed + 4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_table_3_structure() {
        assert_eq!(
            lenet5_small(0).layer_counts(),
            LayerCounts {
                conv: 2,
                fc: 2,
                act: 4
            }
        );
        assert_eq!(
            lenet5_medium(0).layer_counts(),
            LayerCounts {
                conv: 2,
                fc: 2,
                act: 4
            }
        );
        assert_eq!(
            lenet5_large(0).layer_counts(),
            LayerCounts {
                conv: 2,
                fc: 2,
                act: 4
            }
        );
        assert_eq!(
            industrial(0).layer_counts(),
            LayerCounts {
                conv: 5,
                fc: 2,
                act: 6
            }
        );
        assert_eq!(
            squeezenet_cifar(0).layer_counts(),
            LayerCounts {
                conv: 10,
                fc: 0,
                act: 9
            }
        );
    }

    #[test]
    fn plain_inference_produces_expected_logit_counts() {
        for network in all_networks(42) {
            let (c, h, w) = network.input_shape;
            let input = Tensor::from_data(c, h, w, vec![0.1; c * h * w]);
            let logits = network.infer_plain(&input);
            let expected = match network.name.as_str() {
                "Industrial" => 2,
                _ => 10,
            };
            assert_eq!(logits.len(), expected, "{}", network.name);
            assert!(logits.iter().all(|v| v.is_finite()), "{}", network.name);
            assert_eq!(network.output_count(), expected);
        }
    }

    #[test]
    fn flop_counts_increase_with_network_size() {
        let small = lenet5_small(1).flop_count();
        let medium = lenet5_medium(1).flop_count();
        let large = lenet5_large(1).flop_count();
        assert!(small < medium && medium < large);
        assert!(small > 1000);
    }

    #[test]
    fn networks_are_deterministic_per_seed() {
        let a = lenet5_small(7);
        let b = lenet5_small(7);
        let input = Tensor::from_data(1, 8, 8, (0..64).map(|i| i as f64 / 64.0).collect());
        assert_eq!(a.infer_plain(&input), b.infer_plain(&input));
    }
}
