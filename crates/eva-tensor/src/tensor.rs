//! Plaintext tensors and reference (unencrypted) neural-network inference.
//!
//! The encrypted pipeline is validated against this module: a network's
//! encrypted inference is correct when its decrypted logits match the
//! plaintext logits computed here.

/// A dense tensor in channel-height-width (CHW) order.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Channels.
    pub channels: usize,
    /// Height.
    pub height: usize,
    /// Width.
    pub width: usize,
    /// Row-major CHW data of length `channels * height * width`.
    pub data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the shape.
    pub fn from_data(channels: usize, height: usize, width: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), channels * height * width, "shape mismatch");
        Self {
            channels,
            height,
            width,
            data,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    pub fn get(&self, c: usize, i: usize, j: usize) -> f64 {
        self.data[c * self.height * self.width + i * self.width + j]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, c: usize, i: usize, j: usize, value: f64) {
        self.data[c * self.height * self.width + i * self.width + j] = value;
    }
}

/// Convolution weights: `[out_channels][in_channels][k][k]` flattened.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvWeights {
    /// Output channels.
    pub out_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Kernel size (square kernels).
    pub kernel: usize,
    /// Weights, indexed `[f][c][di][dj]` row-major.
    pub weights: Vec<f64>,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
}

impl ConvWeights {
    /// Weight accessor.
    pub fn weight(&self, f: usize, c: usize, di: usize, dj: usize) -> f64 {
        let k = self.kernel;
        self.weights[((f * self.in_channels + c) * k + di) * k + dj]
    }
}

/// Fully-connected weights: `[out_dim][in_dim]` row-major plus bias.
#[derive(Debug, Clone, PartialEq)]
pub struct FcWeights {
    /// Output dimension.
    pub out_dim: usize,
    /// Input dimension.
    pub in_dim: usize,
    /// Weights, row-major `[o][t]`.
    pub weights: Vec<f64>,
    /// Per-output bias.
    pub bias: Vec<f64>,
}

/// Plaintext valid (no padding, stride 1) convolution.
pub fn conv2d(input: &Tensor, w: &ConvWeights) -> Tensor {
    assert_eq!(input.channels, w.in_channels);
    let out_h = input.height - w.kernel + 1;
    let out_w = input.width - w.kernel + 1;
    let mut out = Tensor::zeros(w.out_channels, out_h, out_w);
    for f in 0..w.out_channels {
        for i in 0..out_h {
            for j in 0..out_w {
                let mut acc = w.bias[f];
                for c in 0..w.in_channels {
                    for di in 0..w.kernel {
                        for dj in 0..w.kernel {
                            acc += input.get(c, i + di, j + dj) * w.weight(f, c, di, dj);
                        }
                    }
                }
                out.set(f, i, j, acc);
            }
        }
    }
    out
}

/// Plaintext average pooling with a square window and matching stride.
pub fn avg_pool(input: &Tensor, window: usize) -> Tensor {
    let out_h = input.height / window;
    let out_w = input.width / window;
    let mut out = Tensor::zeros(input.channels, out_h, out_w);
    let norm = 1.0 / (window * window) as f64;
    for c in 0..input.channels {
        for i in 0..out_h {
            for j in 0..out_w {
                let mut acc = 0.0;
                for di in 0..window {
                    for dj in 0..window {
                        acc += input.get(c, i * window + di, j * window + dj);
                    }
                }
                out.set(c, i, j, acc * norm);
            }
        }
    }
    out
}

/// Plaintext polynomial activation `a*x^2 + b*x + c` applied element-wise.
pub fn poly_activation(input: &Tensor, a: f64, b: f64, c: f64) -> Tensor {
    let data = input.data.iter().map(|&x| a * x * x + b * x + c).collect();
    Tensor::from_data(input.channels, input.height, input.width, data)
}

/// Plaintext fully-connected layer over the flattened CHW input.
pub fn fully_connected(input: &Tensor, w: &FcWeights) -> Vec<f64> {
    assert_eq!(input.len(), w.in_dim, "flattened input size mismatch");
    (0..w.out_dim)
        .map(|o| {
            let mut acc = w.bias[o];
            for (t, &x) in input.data.iter().enumerate() {
                acc += x * w.weights[o * w.in_dim + t];
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel_copies_input() {
        let input = Tensor::from_data(1, 3, 3, (1..=9).map(|v| v as f64).collect());
        let w = ConvWeights {
            out_channels: 1,
            in_channels: 1,
            kernel: 1,
            weights: vec![1.0],
            bias: vec![0.0],
        };
        let out = conv2d(&input, &w);
        assert_eq!(out.data, input.data);
    }

    #[test]
    fn conv_sums_window() {
        let input = Tensor::from_data(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = ConvWeights {
            out_channels: 1,
            in_channels: 1,
            kernel: 2,
            weights: vec![1.0; 4],
            bias: vec![0.5],
        };
        let out = conv2d(&input, &w);
        assert_eq!(out.data, vec![10.5]);
    }

    #[test]
    fn pooling_and_activation() {
        let input = Tensor::from_data(1, 2, 2, vec![1.0, 3.0, 5.0, 7.0]);
        let pooled = avg_pool(&input, 2);
        assert_eq!(pooled.data, vec![4.0]);
        let activated = poly_activation(&pooled, 1.0, 2.0, 0.5);
        assert_eq!(activated.data, vec![16.0 + 8.0 + 0.5]);
    }

    #[test]
    fn fully_connected_matches_manual_dot_product() {
        let input = Tensor::from_data(1, 1, 3, vec![1.0, 2.0, 3.0]);
        let w = FcWeights {
            out_dim: 2,
            in_dim: 3,
            weights: vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5],
            bias: vec![0.0, 1.0],
        };
        assert_eq!(fully_connected(&input, &w), vec![-2.0, 4.0]);
    }
}
