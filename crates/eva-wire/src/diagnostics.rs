//! Wire codec for program-verification diagnostics.
//!
//! When a deployment server refuses to load a `.evaprog` — the static
//! verifier found structural or semantic violations, or the noise gate
//! rejected it — the refusal should be *explainable* to the operator on the
//! other side of the trust boundary. [`ProgramDiagnostics`] is the compact,
//! allocation-guarded payload carrying those findings: the program's name
//! plus one entry per diagnostic (the verifier check that fired, the node it
//! anchors to, and the human-readable message).
//!
//! Like every other EVA wire object it is a [`WireObject`]: magic `EVAX`,
//! version 1, the shared magic/version/length envelope, and a total decoder
//! that returns [`WireError`] on any malformed input.
//!
//! ```
//! use eva_wire::diagnostics::{ProgramDiagnostics, WireDiagnostic};
//! use eva_wire::WireObject;
//!
//! let report = ProgramDiagnostics {
//!     program: "sobel".into(),
//!     diagnostics: vec![WireDiagnostic {
//!         check: "rotation-keys".into(),
//!         node: None,
//!         message: "rotation step 3 is missing from the Galois-key request".into(),
//!     }],
//! };
//! let bytes = report.to_wire_bytes();
//! let back = ProgramDiagnostics::from_wire_bytes(&bytes).unwrap();
//! assert_eq!(back, report);
//! ```

use crate::frame::{Reader, WireError, WireObject, Writer};

/// Upper bound on the number of diagnostics a payload may carry; hostile
/// inputs claiming more are rejected before allocation.
pub const MAX_WIRE_DIAGNOSTICS: usize = 4096;

/// One verifier finding in wire form: the check name (the verifier's stable
/// kebab-case identifier, e.g. `"scale-match"`), the node it anchors to (if
/// any) and the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Stable name of the verifier check that fired.
    pub check: String,
    /// Node id the finding is anchored to, if any.
    pub node: Option<u64>,
    /// Human-readable description with node/opcode provenance.
    pub message: String,
}

/// The verification findings for one program, as shipped to a client whose
/// program upload or load was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramDiagnostics {
    /// Name of the program the findings refer to.
    pub program: String,
    /// Every finding, most severe first (the producer's ordering is kept).
    pub diagnostics: Vec<WireDiagnostic>,
}

impl WireObject for ProgramDiagnostics {
    const MAGIC: [u8; 4] = *b"EVAX";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        w.str(&self.program);
        w.u32(self.diagnostics.len() as u32);
        for d in &self.diagnostics {
            w.str(&d.check);
            match d.node {
                Some(node) => {
                    w.bool(true);
                    w.u64(node);
                }
                None => w.bool(false),
            }
            w.str(&d.message);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let program = r.str()?;
        let count = r.u32()? as usize;
        if count > MAX_WIRE_DIAGNOSTICS {
            return Err(WireError::Invalid(format!(
                "diagnostic count {count} exceeds the limit of {MAX_WIRE_DIAGNOSTICS}"
            )));
        }
        let mut diagnostics = Vec::with_capacity(count);
        for _ in 0..count {
            let check = r.str()?;
            let node = if r.bool()? { Some(r.u64()?) } else { None };
            let message = r.str()?;
            diagnostics.push(WireDiagnostic {
                check,
                node,
                message,
            });
        }
        Ok(ProgramDiagnostics {
            program,
            diagnostics,
        })
    }
}

impl std::fmt::Display for ProgramDiagnostics {
    /// One finding per line: `program: [check] message (node N)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            write!(f, "{}: [{}] {}", self.program, d.check, d.message)?;
            if let Some(node) = d.node {
                write!(f, " (node {node})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProgramDiagnostics {
        ProgramDiagnostics {
            program: "lenet".into(),
            diagnostics: vec![
                WireDiagnostic {
                    check: "relinearized".into(),
                    node: Some(17),
                    message: "node 17 (multiply): operand %12 has 3 polynomials".into(),
                },
                WireDiagnostic {
                    check: "parameters".into(),
                    node: None,
                    message: "coefficient modulus exceeds the security budget".into(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let original = sample();
        let bytes = original.to_wire_bytes();
        let restored = ProgramDiagnostics::from_wire_bytes(&bytes).unwrap();
        assert_eq!(restored, original);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(restored.to_wire_bytes(), bytes);
    }

    #[test]
    fn empty_report_roundtrips() {
        let original = ProgramDiagnostics {
            program: String::new(),
            diagnostics: Vec::new(),
        };
        let restored = ProgramDiagnostics::from_wire_bytes(&original.to_wire_bytes()).unwrap();
        assert_eq!(restored, original);
    }

    #[test]
    fn truncation_at_every_prefix_is_rejected() {
        let bytes = sample().to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(
                ProgramDiagnostics::from_wire_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn corrupted_envelope_is_rejected() {
        let bytes = sample().to_wire_bytes();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            ProgramDiagnostics::from_wire_bytes(&bad_magic),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            ProgramDiagnostics::from_wire_bytes(&bad_version),
            Err(WireError::UnsupportedVersion { .. })
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(ProgramDiagnostics::from_wire_bytes(&trailing).is_err());
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        // Hand-craft a body claiming u32::MAX diagnostics.
        let mut w = Writer::new();
        let mut body = Writer::new();
        body.str("evil");
        body.u32(u32::MAX);
        let body = body.into_bytes();
        w.raw(b"EVAX");
        w.u32(1);
        w.u64(body.len() as u64);
        w.raw(&body);
        let err = ProgramDiagnostics::from_wire_bytes(&w.into_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds the limit"), "{err}");
    }
}
