//! Content fingerprints for evaluation-key caching.
//!
//! Session resumption lets a reconnecting client skip the multi-megabyte
//! evaluation-key upload: the server keeps recently seen keys in a cache
//! addressed by a **content hash over their canonical wire bytes**, and the
//! client names that hash in its Hello message. Both sides compute the hash
//! with [`fingerprint_eval_keys`], so no fingerprint ever needs to travel
//! alongside the keys themselves.
//!
//! The hash is SHA-256 (FIPS 180-4), implemented here directly because the
//! build environment vendors all dependencies. Collision resistance matters:
//! the cache is shared between mutually distrusting clients, and a weaker
//! hash would let one client craft keys colliding with another's fingerprint
//! and poison the entry. (Evaluation keys are public material, so even a
//! successful collision discloses nothing — it can only corrupt the victim's
//! results, which their decryption immediately exposes as garbage.)

use std::fmt;

use eva_ckks::{GaloisKeys, RelinearizationKey};

use crate::frame::WireObject;

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4). Feed bytes with [`Sha256::update`],
/// finish with [`Sha256::finalize`].
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled message block.
    block: [u8; 64],
    /// Bytes currently buffered in `block`.
    fill: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            block: [0u8; 64],
            fill: 0,
            length: 0,
        }
    }

    /// Absorbs `bytes` into the hash state.
    pub fn update(&mut self, bytes: &[u8]) {
        self.length = self.length.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.fill > 0 {
            let take = rest.len().min(64 - self.fill);
            self.block[self.fill..self.fill + take].copy_from_slice(&rest[..take]);
            self.fill += take;
            rest = &rest[take..];
            if self.fill < 64 {
                // The input only topped up the partial block.
                return;
            }
            let block = self.block;
            self.compress(&block);
            self.fill = 0;
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().unwrap());
            rest = tail;
        }
        self.block[..rest.len()].copy_from_slice(rest);
        self.fill = rest.len();
    }

    /// Applies the FIPS padding and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0]);
        }
        // Append the message length directly (it must not count toward the
        // padded length itself).
        self.block[56..64].copy_from_slice(&bit_length.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut digest = [0u8; 32];
        for (chunk, word) in digest.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        digest
    }

    /// One-shot convenience: the SHA-256 digest of `bytes`.
    pub fn digest(bytes: &[u8]) -> [u8; 32] {
        let mut hasher = Self::new();
        hasher.update(bytes);
        hasher.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (word, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *word = word.wrapping_add(v);
        }
    }
}

/// A 256-bit content fingerprint over a client's evaluation keys, used to
/// address the server's key cache during session resumption.
///
/// Produced by [`fingerprint_eval_keys`]; displayed as 64 lowercase hex
/// digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyFingerprint(pub [u8; 32]);

impl KeyFingerprint {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Display for KeyFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

/// Domain-separation prefix of the evaluation-key fingerprint (so the digest
/// can never be confused with a hash of the same bytes in another role).
const FINGERPRINT_DOMAIN: &[u8] = b"EVA-eval-keys-v1";

/// Computes the content fingerprint of one client's evaluation keys:
///
/// ```text
/// SHA-256( "EVA-eval-keys-v1" · has_relin(u8) · relin_wire_bytes? · galois_wire_bytes )
/// ```
///
/// where the key bytes are the canonical `eva-wire` encodings (`EVAL` and
/// `EVAG`, which re-encode byte-identically after a decode). Client and
/// server compute this independently — the client over the keys it generated,
/// the server over the keys it received — so the fingerprint itself never
/// needs to be trusted from the wire.
pub fn fingerprint_eval_keys(
    relin: Option<&RelinearizationKey>,
    galois: &GaloisKeys,
) -> KeyFingerprint {
    let mut hasher = Sha256::new();
    hasher.update(FINGERPRINT_DOMAIN);
    match relin {
        Some(key) => {
            hasher.update(&[1]);
            hasher.update(&key.to_wire_bytes());
        }
        None => hasher.update(&[0]),
    }
    hasher.update(&galois.to_wire_bytes());
    KeyFingerprint(hasher.finalize())
}

/// Computes the evaluation-key fingerprint from an already-serialized
/// key-upload byte sequence of the shape `has_relin(u8) · EVAL? · EVAG` —
/// which is exactly the session protocol's EvalKeys frame payload.
///
/// This is **byte-identical input** to [`fingerprint_eval_keys`] (the bool
/// is one `0`/`1` byte, the keys are their canonical wire encodings), so the
/// two functions always agree; this form exists so that the client can hash
/// the payload it is about to send and the server can hash the payload it
/// just received, with neither side re-serializing tens of megabytes of key
/// material it already holds as bytes. Decoders only accept canonical
/// encodings (re-encoding any accepted buffer is byte-identical, pinned by
/// the corruption tests), so hashing received bytes equals hashing the
/// decoded keys.
pub fn fingerprint_eval_key_payload(payload: &[u8]) -> KeyFingerprint {
    let mut hasher = EvalKeyPayloadHasher::new();
    hasher.update(payload);
    hasher.finalize()
}

/// Streaming form of [`fingerprint_eval_key_payload`]: feed the EvalKeys
/// frame payload in arbitrary chunks as it arrives off the wire and finalize
/// once — the digest is byte-identical to the one-shot function, so a server
/// reading a multi-megabyte key upload in bounded chunks never has to make a
/// second full pass over the payload just to fingerprint it.
#[derive(Debug, Clone)]
pub struct EvalKeyPayloadHasher {
    inner: Sha256,
}

impl EvalKeyPayloadHasher {
    /// Starts a fingerprint computation (the domain prefix is hashed here).
    pub fn new() -> Self {
        let mut inner = Sha256::new();
        inner.update(FINGERPRINT_DOMAIN);
        Self { inner }
    }

    /// Absorbs the next chunk of the payload.
    pub fn update(&mut self, chunk: &[u8]) {
        self.inner.update(chunk);
    }

    /// Completes the digest over everything absorbed so far.
    pub fn finalize(self) -> KeyFingerprint {
        KeyFingerprint(self.inner.finalize())
    }
}

impl Default for EvalKeyPayloadHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_test_vectors() {
        // FIPS 180-4 / NIST CAVP known-answer vectors.
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's, fed in uneven chunks to exercise buffering.
        let mut hasher = Sha256::new();
        let chunk = [b'a'; 977];
        let mut remaining = 1_000_000usize;
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            hasher.update(&chunk[..take]);
            remaining -= take;
        }
        assert_eq!(
            hex(&hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut hasher = Sha256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), Sha256::digest(&data), "split {split}");
        }
    }

    #[test]
    fn payload_form_matches_the_reference_definition() {
        // `has_relin(u8) · EVAL? · EVAG` hashed as one buffer must equal the
        // piecewise reference definition — the session layer relies on this
        // to hash frame payloads instead of re-serializing keys.
        let galois = GaloisKeys::default();
        let mut payload = vec![0u8];
        payload.extend_from_slice(&galois.to_wire_bytes());
        assert_eq!(
            fingerprint_eval_key_payload(&payload),
            fingerprint_eval_keys(None, &galois)
        );
    }

    #[test]
    fn fingerprint_hex_rendering() {
        let fp = KeyFingerprint([0xab; 32]);
        assert_eq!(fp.to_string(), "ab".repeat(32));
        assert_eq!(fp.as_bytes(), &[0xab; 32]);
    }
}
