//! The shared framing layer of every EVA binary format.
//!
//! All EVA serialization — the compiler's program format in
//! `eva-core::serialize` as well as the runtime object codecs in
//! [`crate::runtime`] — is built from the same three pieces:
//!
//! * [`Writer`] / [`Reader`]: little-endian primitive encoding with
//!   length-prefixed strings and arrays,
//! * the **object envelope**: a 4-byte magic, a `u32` format version and a
//!   `u64` body length, written by [`Writer::object`] and checked by
//!   [`Reader::object`], so every object is self-describing and can be
//!   skipped, nested or framed on a socket without knowing its schema,
//! * [`WireError`]: the one error type every decoder returns. Decoders
//!   **never panic** on malformed input; corruption surfaces as an error.
//!
//! The [`WireObject`] trait ties the three together: a codec implements
//! `encode_body`/`decode_body` and inherits envelope handling, byte-vector
//! entry points and strict trailing-byte checking.

use std::fmt;

/// Errors produced while decoding any EVA wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced data did.
    UnexpectedEnd,
    /// The object does not start with the expected magic bytes.
    BadMagic {
        /// Magic the decoder was looking for.
        expected: [u8; 4],
        /// Magic actually found.
        found: [u8; 4],
    },
    /// The object's format version is not supported by this decoder.
    UnsupportedVersion {
        /// Magic of the object family.
        magic: [u8; 4],
        /// Version found in the envelope.
        version: u32,
    },
    /// A field's contents are structurally invalid (bad tag, out-of-range
    /// size, inconsistent shapes, non-finite scale, …).
    Invalid(String),
    /// Bytes remain after the object (or object body) ended.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::BadMagic { expected, found } => write!(
                f,
                "bad magic bytes: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            WireError::UnsupportedVersion { magic, version } => write!(
                f,
                "unsupported {:?} format version {version}",
                String::from_utf8_lossy(magic)
            ),
            WireError::Invalid(msg) => write!(f, "invalid wire data: {msg}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the object")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian IEEE-754 `f64` (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a UTF-8 string with a `u32` length prefix.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes without a length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u64` slice with a `u64` element-count prefix.
    pub fn u64_slice(&mut self, values: &[u64]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.u64(v);
        }
    }

    /// Writes an object envelope — magic, version, `u64` body length — around
    /// whatever `body` writes. The length is patched in after the body is
    /// known, so nesting objects is free.
    pub fn object(&mut self, magic: [u8; 4], version: u32, body: impl FnOnce(&mut Writer)) {
        self.buf.extend_from_slice(&magic);
        self.u32(version);
        let len_pos = self.buf.len();
        self.u64(0);
        body(self);
        let body_len = (self.buf.len() - len_pos - 8) as u64;
        self.buf[len_pos..len_pos + 8].copy_from_slice(&body_len.to_le_bytes());
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`WireError::TrailingBytes`] unless the input is exhausted.
    ///
    /// # Errors
    ///
    /// Returns an error if unread bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] on exhausted input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` encoded as one byte; any value other than 0/1 is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Invalid`] for bytes other than 0 and 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Invalid(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] on exhausted input.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] on exhausted input.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] on exhausted input.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] on exhausted input.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64` (bit-exact).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] on exhausted input.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Invalid("invalid UTF-8 in string".into()))
    }

    /// Reads `count` little-endian `u64`s, validating the byte budget before
    /// allocating (so a corrupt length cannot trigger a huge allocation).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] if fewer than `8 * count` bytes
    /// remain.
    pub fn u64_array(&mut self, count: usize) -> Result<Vec<u64>, WireError> {
        if count.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(WireError::UnexpectedEnd);
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Reads a `u64`-count-prefixed `u64` slice (the inverse of
    /// [`Writer::u64_slice`]).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] on truncation.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, WireError> {
        let count = self.u64()? as usize;
        self.u64_array(count)
    }

    /// Opens an object envelope: checks the magic, reads the version and
    /// returns it with a sub-reader spanning exactly the announced body. The
    /// outer reader advances past the object.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on magic mismatch or truncation.
    pub fn object(&mut self, magic: [u8; 4]) -> Result<(u32, Reader<'a>), WireError> {
        let found = self.take(4)?;
        if found != magic {
            return Err(WireError::BadMagic {
                expected: magic,
                found: found.try_into().unwrap(),
            });
        }
        let version = self.u32()?;
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return Err(WireError::UnexpectedEnd);
        }
        let body = self.take(len as usize)?;
        Ok((version, Reader::new(body)))
    }
}

/// A self-describing wire object: a 4-byte magic, a format version and a
/// length-prefixed body.
///
/// Implementors provide the body codec; the envelope (including strict
/// version and trailing-byte checking) comes for free. Objects nest by
/// calling [`WireObject::encode`] / [`WireObject::decode`] from another
/// object's body.
pub trait WireObject: Sized {
    /// The object family's 4-byte magic.
    const MAGIC: [u8; 4];
    /// The format version this codec writes and accepts.
    const VERSION: u32;

    /// Writes the body fields (everything inside the envelope).
    fn encode_body(&self, w: &mut Writer);

    /// Reads the body fields written by [`WireObject::encode_body`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid input.
    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Writes the full object (envelope + body) into `w`.
    fn encode(&self, w: &mut Writer) {
        w.object(Self::MAGIC, Self::VERSION, |w| self.encode_body(w));
    }

    /// Reads one full object from `r`, checking magic, version and that the
    /// body was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any framing or body defect.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let (version, mut body) = r.object(Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(WireError::UnsupportedVersion {
                magic: Self::MAGIC,
                version,
            });
        }
        let value = Self::decode_body(&mut body)?;
        body.expect_end()?;
        Ok(value)
    }

    /// Encodes the object into a standalone byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes an object from a byte vector that must contain exactly one
    /// object and nothing else.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any framing or body defect, including
    /// trailing bytes.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: i64,
        label: String,
    }

    impl WireObject for Point {
        const MAGIC: [u8; 4] = *b"TPNT";
        const VERSION: u32 = 7;
        fn encode_body(&self, w: &mut Writer) {
            w.i64(self.x);
            w.str(&self.label);
        }
        fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(Self {
                x: r.i64()?,
                label: r.str()?,
            })
        }
    }

    #[test]
    fn envelope_roundtrip_and_nesting() {
        let p = Point {
            x: -42,
            label: "hello".into(),
        };
        let bytes = p.to_wire_bytes();
        let q = Point::from_wire_bytes(&bytes).unwrap();
        assert_eq!(q.x, -42);
        assert_eq!(q.label, "hello");

        // Nest two objects in one stream.
        let mut w = Writer::new();
        p.encode(&mut w);
        p.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        Point::decode(&mut r).unwrap();
        Point::decode(&mut r).unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn corrupt_envelopes_are_rejected() {
        let p = Point {
            x: 1,
            label: "x".into(),
        };
        let bytes = p.to_wire_bytes();
        // Truncation at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(Point::from_wire_bytes(&bytes[..cut]).is_err());
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            Point::from_wire_bytes(&bad),
            Err(WireError::BadMagic { .. })
        ));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] ^= 0x01;
        assert!(matches!(
            Point::from_wire_bytes(&bad),
            Err(WireError::UnsupportedVersion { .. })
        ));
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            Point::from_wire_bytes(&bad),
            Err(WireError::TrailingBytes { .. })
        ));
        // Oversized announced body length.
        let mut bad = bytes;
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Point::from_wire_bytes(&bad),
            Err(WireError::UnexpectedEnd)
        ));
    }

    #[test]
    fn u64_array_guards_allocation() {
        // A claimed count far beyond the buffer must fail before allocating.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.u64_slice().is_err());
    }
}
