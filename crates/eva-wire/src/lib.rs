//! # eva-wire — the binary wire formats of the EVA deployment split
//!
//! The EVA paper's deployment model (Section 2) is a client/server split: the
//! client owns every key, encodes and encrypts its inputs, and an untrusted
//! server executes the compiled circuit over ciphertexts. This crate defines
//! the **byte formats** that cross that trust boundary:
//!
//! * [`frame`] — the framing layer shared by *every* EVA binary format: the
//!   little-endian [`Writer`]/[`Reader`] pair, the magic/version/length
//!   object envelope and the [`WireError`] type. The compiler's program
//!   format in `eva-core::serialize` is built on this same layer, so program
//!   files and runtime objects share one set of framing rules.
//! * [`runtime`] — [`WireObject`] codecs for the runtime objects:
//!   [`Ciphertext`](eva_ckks::Ciphertext), [`Plaintext`](eva_ckks::Plaintext),
//!   [`PublicKey`](eva_ckks::PublicKey),
//!   [`RelinearizationKey`](eva_ckks::RelinearizationKey) and
//!   [`GaloisKeys`](eva_ckks::GaloisKeys).
//!
//! `SecretKey` intentionally has **no codec**: the service layer can only
//! frame [`WireObject`] values, so this crate is a structural guarantee that
//! secret key material never reaches a socket.
//!
//! Every decoder is total: truncated, bit-flipped or hostile input returns a
//! [`WireError`], never panics, and claimed lengths are validated against the
//! available bytes before any allocation.
//!
//! # Format summary
//!
//! | object | magic | version |
//! |---|---|---|
//! | EVA program (`eva-core::serialize`) | `EVAP` | 3 |
//! | compiled program bundle (`eva-core::serialize`) | `EVAB` | 1 |
//! | encryption parameter spec (`eva-core::serialize`) | `EVAS` | 1 |
//! | ciphertext | `EVAC` | 1 |
//! | plaintext | `EVAT` | 1 |
//! | public key | `EVAK` | 1 |
//! | relinearization key | `EVAL` | 1 |
//! | Galois keys | `EVAG` | 1 |
//! | program manifest (`eva-service`) | `EVAM` | 1 |
//!
//! Every object is `magic(4) · version(u32) · body_len(u64) · body`, all
//! integers little-endian.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod runtime;

pub use frame::{Reader, WireError, WireObject, Writer};
pub use runtime::{
    decode_poly, encode_poly, MAX_WIRE_CIPHERTEXT_POLYS, MAX_WIRE_DEGREE, MAX_WIRE_LEVEL,
};
