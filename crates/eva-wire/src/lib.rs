//! # eva-wire — the binary wire formats of the EVA deployment split
//!
//! The EVA paper's deployment model (Section 2) is a client/server split: the
//! client owns every key, encodes and encrypts its inputs, and an untrusted
//! server executes the compiled circuit over ciphertexts. This crate defines
//! the **byte formats** that cross that trust boundary:
//!
//! * [`frame`] — the framing layer shared by *every* EVA binary format: the
//!   little-endian [`Writer`]/[`Reader`] pair, the magic/version/length
//!   object envelope and the [`WireError`] type. The compiler's program
//!   format in `eva-core::serialize` is built on this same layer, so program
//!   files and runtime objects share one set of framing rules.
//! * [`runtime`] — [`WireObject`] codecs for the runtime objects:
//!   [`Ciphertext`](eva_ckks::Ciphertext),
//!   [`SeededCiphertext`](eva_ckks::SeededCiphertext) (half-size fresh
//!   ciphertexts whose uniform polynomial ships as a 32-byte seed),
//!   [`Plaintext`](eva_ckks::Plaintext), [`PublicKey`](eva_ckks::PublicKey),
//!   [`RelinearizationKey`](eva_ckks::RelinearizationKey) and
//!   [`GaloisKeys`](eva_ckks::GaloisKeys).
//! * [`fingerprint`] — SHA-256 content fingerprints over evaluation-key wire
//!   bytes ([`fingerprint_eval_keys`]), the addresses of the deployment
//!   server's evaluation-key cache for session resumption.
//! * [`diagnostics`] — [`ProgramDiagnostics`], the payload a server returns
//!   when the static verifier refuses to load a program, carrying every
//!   finding (check name, node, message) across the trust boundary.
//!
//! `SecretKey` intentionally has **no codec**: the service layer can only
//! frame [`WireObject`] values, so this crate is a structural guarantee that
//! secret key material never reaches a socket.
//!
//! Every decoder is total: truncated, bit-flipped or hostile input returns a
//! [`WireError`], never panics, and claimed lengths are validated against the
//! available bytes before any allocation.
//!
//! # Format summary
//!
//! | object | magic | version |
//! |---|---|---|
//! | EVA program (`eva-core::serialize`) | `EVAP` | 3 |
//! | compiled program bundle (`eva-core::serialize`) | `EVAB` | 2 |
//! | encryption parameter spec (`eva-core::serialize`) | `EVAS` | 1 |
//! | ciphertext | `EVAC` | 1 |
//! | seeded ciphertext | `EVAD` | 1 |
//! | plaintext | `EVAT` | 1 |
//! | public key | `EVAK` | 1 |
//! | relinearization key | `EVAL` | 1 |
//! | Galois keys | `EVAG` | 1 |
//! | program manifest (`eva-service`) | `EVAM` | 1 |
//! | program diagnostics ([`diagnostics`]) | `EVAX` | 1 |
//!
//! Every object is `magic(4) · version(u32) · body_len(u64) · body`, all
//! integers little-endian. The full byte-level specification, including the
//! session protocol these objects travel inside, lives in
//! [`docs/PROTOCOL.md`](https://github.com/eva-reproduction/eva/blob/main/docs/PROTOCOL.md).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diagnostics;
pub mod fingerprint;
pub mod frame;
pub mod runtime;

pub use diagnostics::{ProgramDiagnostics, WireDiagnostic};
pub use fingerprint::{
    fingerprint_eval_key_payload, fingerprint_eval_keys, EvalKeyPayloadHasher, KeyFingerprint,
    Sha256,
};
pub use frame::{Reader, WireError, WireObject, Writer};
pub use runtime::{
    decode_poly, encode_poly, MAX_WIRE_CIPHERTEXT_POLYS, MAX_WIRE_DEGREE, MAX_WIRE_LEVEL,
};
