//! Wire codecs for the runtime objects that cross the client/server trust
//! boundary: ciphertexts, plaintexts and the three public key types.
//!
//! Every codec is a [`WireObject`] — a 4-byte magic, a `u32` version and a
//! length-prefixed body — and every decoder validates shapes structurally
//! (consistent degrees, levels and forms, bounded sizes, finite scales) so
//! corrupt or hostile input returns a [`WireError`] instead of panicking or
//! triggering a pathological allocation.
//!
//! There is deliberately **no codec for `SecretKey`**: the service layer can
//! only ever frame objects that implement [`WireObject`], so secret key
//! material cannot reach a socket through this crate.

use eva_ckks::{
    Ciphertext, GaloisKeys, KeySwitchKey, Plaintext, PublicKey, RelinearizationKey,
    SeededCiphertext,
};
use eva_poly::{PolyForm, RnsPoly};

use crate::frame::{Reader, WireError, WireObject, Writer};

/// Largest ring degree a decoder will accept (one doubling above the largest
/// degree the security tables support, as headroom for experiments).
pub const MAX_WIRE_DEGREE: usize = 1 << 17;

/// Largest RNS level (number of primes) a decoder will accept.
pub const MAX_WIRE_LEVEL: usize = 64;

/// Largest number of polynomials a ciphertext may carry on the wire. Fresh
/// ciphertexts have 2, un-relinearized products 3; higher powers are not
/// produced by any executor path but get a little headroom.
pub const MAX_WIRE_CIPHERTEXT_POLYS: usize = 8;

fn form_tag(form: PolyForm) -> u8 {
    match form {
        PolyForm::Coeff => 0,
        PolyForm::Ntt => 1,
    }
}

fn form_from_tag(tag: u8) -> Result<PolyForm, WireError> {
    match tag {
        0 => Ok(PolyForm::Coeff),
        1 => Ok(PolyForm::Ntt),
        other => Err(WireError::Invalid(format!(
            "unknown polynomial form tag {other}"
        ))),
    }
}

/// Writes one RNS polynomial (nested field; no envelope of its own).
pub fn encode_poly(w: &mut Writer, poly: &RnsPoly) {
    w.u32(poly.degree() as u32);
    w.u32(poly.level() as u32);
    w.u8(form_tag(poly.form()));
    for row in poly.rows() {
        for &limb in row {
            w.u64(limb);
        }
    }
}

/// Reads one RNS polynomial written by [`encode_poly`].
///
/// # Errors
///
/// Returns [`WireError`] on truncation or out-of-range shape fields.
pub fn decode_poly(r: &mut Reader<'_>) -> Result<RnsPoly, WireError> {
    let degree = r.u32()? as usize;
    let level = r.u32()? as usize;
    if degree == 0 || degree > MAX_WIRE_DEGREE {
        return Err(WireError::Invalid(format!(
            "polynomial degree {degree} out of range"
        )));
    }
    if level == 0 || level > MAX_WIRE_LEVEL {
        return Err(WireError::Invalid(format!(
            "polynomial level {level} out of range"
        )));
    }
    let form = form_from_tag(r.u8()?)?;
    let data = r.u64_array(degree * level)?;
    Ok(RnsPoly::from_flat(degree, data, form))
}

/// Reads `count` polynomials that must agree in degree, level and form.
fn decode_uniform_polys(
    r: &mut Reader<'_>,
    count: usize,
    what: &str,
) -> Result<Vec<RnsPoly>, WireError> {
    let mut polys: Vec<RnsPoly> = Vec::with_capacity(count);
    for i in 0..count {
        let poly = decode_poly(r)?;
        if let Some(first) = polys.first() {
            if poly.degree() != first.degree()
                || poly.level() != first.level()
                || poly.form() != first.form()
            {
                return Err(WireError::Invalid(format!(
                    "{what} polynomial {i} disagrees with polynomial 0 in shape or form"
                )));
            }
        }
        polys.push(poly);
    }
    Ok(polys)
}

impl WireObject for Ciphertext {
    const MAGIC: [u8; 4] = *b"EVAC";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        w.f64(self.scale_log2());
        w.u32(self.level() as u32);
        w.u8(self.size() as u8);
        for poly in self.polys() {
            encode_poly(w, poly);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let scale_log2 = r.f64()?;
        if !scale_log2.is_finite() {
            return Err(WireError::Invalid("non-finite ciphertext scale".into()));
        }
        let level = r.u32()? as usize;
        let count = r.u8()? as usize;
        if count == 0 || count > MAX_WIRE_CIPHERTEXT_POLYS {
            return Err(WireError::Invalid(format!(
                "ciphertext polynomial count {count} out of range"
            )));
        }
        let polys = decode_uniform_polys(r, count, "ciphertext")?;
        if polys[0].level() != level {
            return Err(WireError::Invalid(format!(
                "ciphertext level field {level} does not match polynomial level {}",
                polys[0].level()
            )));
        }
        Ok(Ciphertext::from_parts(polys, scale_log2, level))
    }
}

impl WireObject for SeededCiphertext {
    const MAGIC: [u8; 4] = *b"EVAD";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        w.f64(self.scale_log2());
        w.u32(self.level() as u32);
        w.raw(self.seed());
        encode_poly(w, self.b());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let scale_log2 = r.f64()?;
        if !scale_log2.is_finite() {
            return Err(WireError::Invalid(
                "non-finite seeded-ciphertext scale".into(),
            ));
        }
        let level = r.u32()? as usize;
        let seed: [u8; 32] = r.take(32)?.try_into().expect("take(32) returns 32 bytes");
        let b = decode_poly(r)?;
        if b.level() != level {
            return Err(WireError::Invalid(format!(
                "seeded ciphertext level field {level} does not match polynomial level {}",
                b.level()
            )));
        }
        Ok(SeededCiphertext::from_parts(seed, b, scale_log2, level))
    }
}

impl WireObject for Plaintext {
    const MAGIC: [u8; 4] = *b"EVAT";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        w.f64(self.scale_log2);
        w.u32(self.level as u32);
        encode_poly(w, &self.poly);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let scale_log2 = r.f64()?;
        if !scale_log2.is_finite() {
            return Err(WireError::Invalid("non-finite plaintext scale".into()));
        }
        let level = r.u32()? as usize;
        let poly = decode_poly(r)?;
        if poly.level() != level {
            return Err(WireError::Invalid(format!(
                "plaintext level field {level} does not match polynomial level {}",
                poly.level()
            )));
        }
        Ok(Plaintext {
            poly,
            scale_log2,
            level,
        })
    }
}

impl WireObject for PublicKey {
    const MAGIC: [u8; 4] = *b"EVAK";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        encode_poly(w, self.p0());
        encode_poly(w, self.p1());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let polys = decode_uniform_polys(r, 2, "public key")?;
        let mut it = polys.into_iter();
        Ok(PublicKey::from_parts(
            it.next().unwrap(),
            it.next().unwrap(),
        ))
    }
}

fn encode_key_switch_key(w: &mut Writer, key: &KeySwitchKey) {
    w.u32(key.digits().len() as u32);
    for (k0, k1) in key.digits() {
        encode_poly(w, k0);
        encode_poly(w, k1);
    }
}

fn decode_key_switch_key(r: &mut Reader<'_>) -> Result<KeySwitchKey, WireError> {
    let count = r.u32()? as usize;
    if count == 0 || count > MAX_WIRE_LEVEL {
        return Err(WireError::Invalid(format!(
            "key-switching digit count {count} out of range"
        )));
    }
    let polys = decode_uniform_polys(r, 2 * count, "key-switching key")?;
    let mut it = polys.into_iter();
    let mut digits = Vec::with_capacity(count);
    for _ in 0..count {
        digits.push((it.next().unwrap(), it.next().unwrap()));
    }
    Ok(KeySwitchKey::from_digits(digits))
}

impl WireObject for RelinearizationKey {
    const MAGIC: [u8; 4] = *b"EVAL";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        encode_key_switch_key(w, self.key_switch_key());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RelinearizationKey::from_key_switch_key(
            decode_key_switch_key(r)?,
        ))
    }
}

impl WireObject for GaloisKeys {
    const MAGIC: [u8; 4] = *b"EVAG";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        let steps = self.step_elements();
        w.u32(steps.len() as u32);
        for (step, elt) in steps {
            w.i64(step);
            w.u64(elt);
        }
        let keys = self.element_keys();
        w.u32(keys.len() as u32);
        for (elt, key) in keys {
            w.u64(elt);
            encode_key_switch_key(w, key);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let step_count = r.u32()? as usize;
        if step_count > 4 * MAX_WIRE_DEGREE {
            return Err(WireError::Invalid(format!(
                "Galois step count {step_count} out of range"
            )));
        }
        let mut steps = Vec::with_capacity(step_count.min(1 << 16));
        let mut prev_step: Option<i64> = None;
        for _ in 0..step_count {
            let step = r.i64()?;
            let elt = r.u64()?;
            if prev_step.is_some_and(|p| p >= step) {
                return Err(WireError::Invalid(
                    "Galois steps are not strictly increasing".into(),
                ));
            }
            prev_step = Some(step);
            steps.push((step, elt));
        }
        let key_count = r.u32()? as usize;
        let mut keys: Vec<(u64, KeySwitchKey)> = Vec::with_capacity(key_count.min(1 << 16));
        let mut degree: Option<usize> = None;
        for _ in 0..key_count {
            let elt = r.u64()?;
            let key = decode_key_switch_key(r)?;
            let key_degree = key.digits()[0].0.degree();
            if degree.is_some_and(|d| d != key_degree) {
                return Err(WireError::Invalid(
                    "Galois keys disagree in ring degree".into(),
                ));
            }
            degree = Some(key_degree);
            // Galois elements must be odd units modulo 2N; validating here
            // keeps the automorphism kernel's precondition out of reach of
            // hostile input.
            if elt % 2 != 1 || elt >= 2 * key_degree as u64 {
                return Err(WireError::Invalid(format!(
                    "Galois element {elt} is not an odd unit modulo 2N"
                )));
            }
            if keys.last().is_some_and(|(prev, _)| *prev >= elt) {
                return Err(WireError::Invalid(
                    "Galois elements are not strictly increasing".into(),
                ));
            }
            keys.push((elt, key));
        }
        for (step, elt) in &steps {
            if !keys.iter().any(|(e, _)| e == elt) {
                return Err(WireError::Invalid(format!(
                    "rotation step {step} references Galois element {elt} with no key"
                )));
            }
        }
        for (elt, _) in &keys {
            if !steps.iter().any(|(_, e)| e == elt) {
                return Err(WireError::Invalid(format!(
                    "Galois element {elt} is not referenced by any rotation step"
                )));
            }
        }
        Ok(GaloisKeys::from_parts(steps, keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_ckks::{CkksContext, CkksEncoder, CkksParameters, Decryptor, Encryptor, KeyGenerator};

    fn context() -> CkksContext {
        let params = CkksParameters::new_insecure(32, &[30, 30, 40], 45).unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn ciphertext_roundtrip_is_bit_exact_and_reencode_is_byte_identical() {
        let ctx = context();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 1);
        let pk = keygen.create_public_key();
        let encoder = CkksEncoder::new(ctx.clone());
        let mut encryptor = Encryptor::from_seed(ctx.clone(), pk, 2);
        let pt = encoder.encode(&[0.5, -1.25, 3.0, 0.125], 30.5, 3);
        let ct = encryptor.encrypt(&pt);

        let bytes = ct.to_wire_bytes();
        let restored = Ciphertext::from_wire_bytes(&bytes).unwrap();
        assert_eq!(restored.scale_log2().to_bits(), ct.scale_log2().to_bits());
        assert_eq!(restored.level(), ct.level());
        assert_eq!(restored.polys(), ct.polys());
        assert_eq!(restored.to_wire_bytes(), bytes);

        // The restored ciphertext still decrypts.
        let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
        let values = decryptor.decrypt_to_values(&restored, 4);
        assert!((values[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn seeded_ciphertext_roundtrip_expands_to_the_unseeded_encryption() {
        use eva_ckks::SymmetricEncryptor;

        let ctx = context();
        let keygen = KeyGenerator::from_seed(ctx.clone(), 9);
        let encoder = CkksEncoder::new(ctx.clone());
        let pt = encoder.encode(&[0.75, -2.0, 1.0, 0.5], 31.5, 3);
        let mut seeded_enc =
            SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 10);
        let mut full_enc =
            SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 10);

        let seeded = seeded_enc.encrypt_seeded(&pt);
        let bytes = seeded.to_wire_bytes();
        // The seeded transport form is roughly half the full encoding.
        let full = full_enc.encrypt(&pt);
        assert!(bytes.len() * 100 <= full.to_wire_bytes().len() * 55);

        let restored = SeededCiphertext::from_wire_bytes(&bytes).unwrap();
        assert_eq!(restored.to_wire_bytes(), bytes);
        let expanded = restored.expand(&ctx).unwrap();
        assert_eq!(expanded.polys(), full.polys());
        assert_eq!(expanded.scale_log2().to_bits(), full.scale_log2().to_bits());

        let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
        let values = decryptor.decrypt_to_values(&expanded, 4);
        assert!((values[0] - 0.75).abs() < 1e-3);
    }

    #[test]
    fn plaintext_and_public_key_roundtrip() {
        let ctx = context();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 3);
        let pk = keygen.create_public_key();
        let encoder = CkksEncoder::new(ctx);
        let pt = encoder.encode(&[1.0; 16], 25.0, 2);

        let restored = Plaintext::from_wire_bytes(&pt.to_wire_bytes()).unwrap();
        assert_eq!(restored.poly, pt.poly);
        assert_eq!(restored.scale_log2.to_bits(), pt.scale_log2.to_bits());

        let restored = PublicKey::from_wire_bytes(&pk.to_wire_bytes()).unwrap();
        assert_eq!(restored.p0(), pk.p0());
        assert_eq!(restored.p1(), pk.p1());
    }

    #[test]
    fn relin_and_galois_keys_roundtrip() {
        let ctx = context();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 4);
        let rk = keygen.create_relinearization_key();
        let restored = RelinearizationKey::from_wire_bytes(&rk.to_wire_bytes()).unwrap();
        assert_eq!(
            restored.key_switch_key().digits(),
            rk.key_switch_key().digits()
        );

        let gk = keygen.create_galois_keys(&[1, -2, 5]);
        let bytes = gk.to_wire_bytes();
        let restored = GaloisKeys::from_wire_bytes(&bytes).unwrap();
        assert_eq!(restored.step_elements(), gk.step_elements());
        assert_eq!(
            restored.to_wire_bytes(),
            bytes,
            "re-encode must be byte-identical"
        );
        assert!(restored.supports_step(-2));
    }

    #[test]
    fn empty_galois_keys_roundtrip() {
        let gk = GaloisKeys::default();
        let restored = GaloisKeys::from_wire_bytes(&gk.to_wire_bytes()).unwrap();
        assert_eq!(restored.step_count(), 0);
    }

    #[test]
    fn mismatched_levels_are_rejected() {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx);
        let pt = encoder.encode(&[1.0; 4], 20.0, 2);
        let mut bytes = pt.to_wire_bytes();
        // The level field sits right after the envelope (16 bytes) and the
        // scale (8 bytes); bump it so it disagrees with the polynomial.
        bytes[16 + 8] ^= 0x01;
        assert!(matches!(
            Plaintext::from_wire_bytes(&bytes),
            Err(WireError::Invalid(_))
        ));
    }
}
