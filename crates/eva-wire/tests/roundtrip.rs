//! Property tests for the runtime wire codecs: `decode ∘ encode = id` (and
//! re-encoding is byte-identical) for ciphertexts, plaintexts and all three
//! public key types across random degrees and levels, plus totality under
//! corruption — truncated and bit-flipped buffers must return errors, never
//! panic.

use eva_ckks::{
    Ciphertext, GaloisKeys, KeySwitchKey, Plaintext, PublicKey, RelinearizationKey,
    SeededCiphertext,
};
use eva_poly::{PolyForm, RnsPoly};
use eva_wire::{fingerprint_eval_keys, WireError, WireObject};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_poly(
    degree: usize,
    level: usize,
    form: PolyForm,
    rng: &mut rand::rngs::StdRng,
) -> RnsPoly {
    let data: Vec<u64> = (0..degree * level)
        .map(|_| rng.gen_range(0..u64::MAX))
        .collect();
    RnsPoly::from_flat(degree, data, form)
}

fn random_ciphertext(degree: usize, level: usize, size: usize, seed: u64) -> Ciphertext {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scale = 20.0 + rng.gen_range(0.0..40.0);
    let polys = (0..size)
        .map(|_| random_poly(degree, level, PolyForm::Ntt, &mut rng))
        .collect();
    Ciphertext::from_parts(polys, scale, level)
}

fn random_seeded_ciphertext(degree: usize, level: usize, seed: u64) -> SeededCiphertext {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scale = 20.0 + rng.gen_range(0.0..40.0);
    let mut expansion_seed = [0u8; 32];
    for byte in expansion_seed.iter_mut() {
        *byte = rng.gen_range(0..=255u64) as u8;
    }
    let b = random_poly(degree, level, PolyForm::Ntt, &mut rng);
    SeededCiphertext::from_parts(expansion_seed, b, scale, level)
}

fn random_key_switch_key(
    degree: usize,
    level: usize,
    rng: &mut rand::rngs::StdRng,
) -> KeySwitchKey {
    let digits = (0..level.max(1))
        .map(|_| {
            (
                random_poly(degree, level, PolyForm::Ntt, rng),
                random_poly(degree, level, PolyForm::Ntt, rng),
            )
        })
        .collect();
    KeySwitchKey::from_digits(digits)
}

/// Round-trips one object and checks both value identity (via the byte
/// representation, which is canonical) and byte identity of the re-encoding.
fn assert_roundtrip<T: WireObject>(value: &T) {
    let bytes = value.to_wire_bytes();
    let restored = T::from_wire_bytes(&bytes).expect("decode of a fresh encoding");
    assert_eq!(
        restored.to_wire_bytes(),
        bytes,
        "re-encoding must be byte-identical"
    );
}

/// Every truncation must error; every single-bit flip must either error or
/// decode to an object whose canonical re-encoding reproduces the mutated
/// buffer exactly (a semantically valid different object). Nothing panics.
fn assert_corruption_total<T: WireObject>(value: &T) {
    let bytes = value.to_wire_bytes();
    for cut in 0..bytes.len() {
        assert!(
            T::from_wire_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
    for bit in 0..bytes.len() * 8 {
        let mut mutated = bytes.clone();
        mutated[bit / 8] ^= 1 << (bit % 8);
        match T::from_wire_bytes(&mutated) {
            Err(_) => {}
            Ok(decoded) => assert_eq!(
                decoded.to_wire_bytes(),
                mutated,
                "bit flip {bit} decoded but does not re-encode to the mutated buffer"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ciphertext_roundtrip(
        degree in prop::sample::select(vec![8usize, 16, 32, 64]),
        level in 1usize..5,
        size in 2usize..4,
        seed in any::<u64>(),
    ) {
        assert_roundtrip(&random_ciphertext(degree, level, size, seed));
    }

    #[test]
    fn seeded_ciphertext_roundtrip(
        degree in prop::sample::select(vec![8usize, 16, 32, 64]),
        level in 1usize..5,
        seed in any::<u64>(),
    ) {
        assert_roundtrip(&random_seeded_ciphertext(degree, level, seed));
    }

    // The tentpole invariant of the seeded transport: for the same message
    // under the same RNG state, the seeded path (encrypt_seeded → wire →
    // decode → expand) and the unseeded path (encrypt) produce the same
    // ciphertext, bit for bit — and hence decrypt identically.
    #[test]
    fn seeded_and_unseeded_encryption_coincide(
        key_seed in any::<u64>(),
        enc_seed in any::<u64>(),
        level in 1usize..4,
        // Keep m·2^scale comfortably inside one 40-bit prime (the level-1
        // case has Q = 2^40): |m| < 1 and scale ≤ 33 leaves headroom for the
        // canonical-embedding blow-up across 16 slots.
        scale in 25.0f64..33.0,
        message in prop::collection::vec(-1.0f64..1.0, 16),
    ) {
        use eva_ckks::{
            CkksContext, CkksEncoder, CkksParameters, Decryptor, KeyGenerator, SymmetricEncryptor,
        };

        let params = CkksParameters::new_insecure(32, &[40, 40, 40], 45).unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let keygen = KeyGenerator::from_seed(ctx.clone(), key_seed);
        let encoder = CkksEncoder::new(ctx.clone());
        let pt = encoder.encode(&message, scale, level);

        let mut seeded_enc =
            SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), enc_seed);
        let mut full_enc =
            SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), enc_seed);

        let seeded = seeded_enc.encrypt_seeded(&pt);
        let full = full_enc.encrypt(&pt);

        // Through the EVAD wire format and back, the expansion is the
        // unseeded ciphertext, bit for bit.
        let restored = SeededCiphertext::from_wire_bytes(&seeded.to_wire_bytes()).unwrap();
        let expanded = restored.expand(&ctx).unwrap();
        prop_assert_eq!(expanded.polys(), full.polys());
        prop_assert_eq!(expanded.scale_log2().to_bits(), full.scale_log2().to_bits());
        prop_assert_eq!(expanded.level(), full.level());

        // And both decrypt to the same values — trivially, being identical,
        // but decrypt once each to pin the full pipeline.
        let decryptor = Decryptor::new(ctx, keygen.secret_key().clone());
        let a = decryptor.decrypt_to_values(&expanded, 16);
        let b = decryptor.decrypt_to_values(&full, 16);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.iter().zip(&message) {
            prop_assert!((x - y).abs() < 1e-3, "decryption drifted: {} vs {}", x, y);
        }
    }

    #[test]
    fn plaintext_roundtrip(
        degree in prop::sample::select(vec![8usize, 16, 64]),
        level in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pt = Plaintext {
            poly: random_poly(degree, level, PolyForm::Ntt, &mut rng),
            scale_log2: rng.gen_range(-10.0..60.0),
            level,
        };
        assert_roundtrip(&pt);
    }

    #[test]
    fn public_key_roundtrip(
        degree in prop::sample::select(vec![8usize, 32]),
        level in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pk = PublicKey::from_parts(
            random_poly(degree, level, PolyForm::Ntt, &mut rng),
            random_poly(degree, level, PolyForm::Ntt, &mut rng),
        );
        assert_roundtrip(&pk);
    }

    #[test]
    fn relinearization_key_roundtrip(
        degree in prop::sample::select(vec![8usize, 32]),
        level in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rk = RelinearizationKey::from_key_switch_key(
            random_key_switch_key(degree, level, &mut rng),
        );
        assert_roundtrip(&rk);
    }

    #[test]
    fn galois_keys_roundtrip(
        degree in prop::sample::select(vec![8usize, 32]),
        level in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Distinct odd elements < 2N, one shared by two steps.
        let elts = [1u64, 3, 5];
        let steps: Vec<(i64, u64)> = vec![(-2, elts[0]), (1, elts[1]), (4, elts[2]), (7, elts[1])];
        let keys: Vec<(u64, KeySwitchKey)> = elts
            .iter()
            .map(|&e| (e, random_key_switch_key(degree, level, &mut rng)))
            .collect();
        assert_roundtrip(&GaloisKeys::from_parts(steps, keys));
    }
}

#[test]
fn corruption_never_panics_and_always_surfaces() {
    // Small fixed objects so the exhaustive truncation + bit-flip sweeps stay
    // cheap; every object family is covered.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    assert_corruption_total(&random_ciphertext(8, 2, 2, 7));
    assert_corruption_total(&random_seeded_ciphertext(8, 2, 7));
    assert_corruption_total(&Plaintext {
        poly: random_poly(8, 2, PolyForm::Ntt, &mut rng),
        scale_log2: 31.25,
        level: 2,
    });
    assert_corruption_total(&PublicKey::from_parts(
        random_poly(8, 2, PolyForm::Ntt, &mut rng),
        random_poly(8, 2, PolyForm::Ntt, &mut rng),
    ));
    assert_corruption_total(&RelinearizationKey::from_key_switch_key(
        random_key_switch_key(8, 2, &mut rng),
    ));
    let gk = GaloisKeys::from_parts(
        vec![(1, 5)],
        vec![(5, random_key_switch_key(8, 2, &mut rng))],
    );
    assert_corruption_total(&gk);
}

#[test]
fn wrong_magic_is_a_typed_error() {
    // A ciphertext buffer is not accepted by the plaintext decoder: the two
    // formats are distinguished by magic, not by guessing.
    let ct = random_ciphertext(8, 1, 2, 1);
    let err = Plaintext::from_wire_bytes(&ct.to_wire_bytes()).unwrap_err();
    assert!(matches!(err, WireError::BadMagic { .. }));
    // Nor is a seeded ciphertext a full ciphertext (EVAD vs EVAC).
    let seeded = random_seeded_ciphertext(8, 1, 1);
    let err = Ciphertext::from_wire_bytes(&seeded.to_wire_bytes()).unwrap_err();
    assert!(matches!(err, WireError::BadMagic { .. }));
}

#[test]
fn eval_key_fingerprints_are_stable_and_content_sensitive() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let relin = RelinearizationKey::from_key_switch_key(random_key_switch_key(8, 2, &mut rng));
    let galois = GaloisKeys::from_parts(
        vec![(1, 5)],
        vec![(5, random_key_switch_key(8, 2, &mut rng))],
    );

    // Deterministic: the same keys always hash to the same fingerprint, and
    // a wire round trip (canonical re-encoding) preserves it.
    let fp = fingerprint_eval_keys(Some(&relin), &galois);
    assert_eq!(fp, fingerprint_eval_keys(Some(&relin), &galois));
    let relin_rt = RelinearizationKey::from_wire_bytes(&relin.to_wire_bytes()).unwrap();
    let galois_rt = GaloisKeys::from_wire_bytes(&galois.to_wire_bytes()).unwrap();
    assert_eq!(fp, fingerprint_eval_keys(Some(&relin_rt), &galois_rt));

    // Sensitive: dropping the relin key, or changing any key content,
    // changes the fingerprint.
    assert_ne!(fp, fingerprint_eval_keys(None, &galois));
    let other_relin =
        RelinearizationKey::from_key_switch_key(random_key_switch_key(8, 2, &mut rng));
    assert_ne!(fp, fingerprint_eval_keys(Some(&other_relin), &galois));
    let other_galois = GaloisKeys::from_parts(
        vec![(2, 5)],
        vec![(5, random_key_switch_key(8, 2, &mut rng))],
    );
    assert_ne!(fp, fingerprint_eval_keys(Some(&relin), &other_galois));
}
