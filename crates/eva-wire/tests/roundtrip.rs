//! Property tests for the runtime wire codecs: `decode ∘ encode = id` (and
//! re-encoding is byte-identical) for ciphertexts, plaintexts and all three
//! public key types across random degrees and levels, plus totality under
//! corruption — truncated and bit-flipped buffers must return errors, never
//! panic.

use eva_ckks::{Ciphertext, GaloisKeys, KeySwitchKey, Plaintext, PublicKey, RelinearizationKey};
use eva_poly::{PolyForm, RnsPoly};
use eva_wire::{WireError, WireObject};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_poly(
    degree: usize,
    level: usize,
    form: PolyForm,
    rng: &mut rand::rngs::StdRng,
) -> RnsPoly {
    let data: Vec<u64> = (0..degree * level)
        .map(|_| rng.gen_range(0..u64::MAX))
        .collect();
    RnsPoly::from_flat(degree, data, form)
}

fn random_ciphertext(degree: usize, level: usize, size: usize, seed: u64) -> Ciphertext {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let scale = 20.0 + rng.gen_range(0.0..40.0);
    let polys = (0..size)
        .map(|_| random_poly(degree, level, PolyForm::Ntt, &mut rng))
        .collect();
    Ciphertext::from_parts(polys, scale, level)
}

fn random_key_switch_key(
    degree: usize,
    level: usize,
    rng: &mut rand::rngs::StdRng,
) -> KeySwitchKey {
    let digits = (0..level.max(1))
        .map(|_| {
            (
                random_poly(degree, level, PolyForm::Ntt, rng),
                random_poly(degree, level, PolyForm::Ntt, rng),
            )
        })
        .collect();
    KeySwitchKey::from_digits(digits)
}

/// Round-trips one object and checks both value identity (via the byte
/// representation, which is canonical) and byte identity of the re-encoding.
fn assert_roundtrip<T: WireObject>(value: &T) {
    let bytes = value.to_wire_bytes();
    let restored = T::from_wire_bytes(&bytes).expect("decode of a fresh encoding");
    assert_eq!(
        restored.to_wire_bytes(),
        bytes,
        "re-encoding must be byte-identical"
    );
}

/// Every truncation must error; every single-bit flip must either error or
/// decode to an object whose canonical re-encoding reproduces the mutated
/// buffer exactly (a semantically valid different object). Nothing panics.
fn assert_corruption_total<T: WireObject>(value: &T) {
    let bytes = value.to_wire_bytes();
    for cut in 0..bytes.len() {
        assert!(
            T::from_wire_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
    for bit in 0..bytes.len() * 8 {
        let mut mutated = bytes.clone();
        mutated[bit / 8] ^= 1 << (bit % 8);
        match T::from_wire_bytes(&mutated) {
            Err(_) => {}
            Ok(decoded) => assert_eq!(
                decoded.to_wire_bytes(),
                mutated,
                "bit flip {bit} decoded but does not re-encode to the mutated buffer"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ciphertext_roundtrip(
        degree in prop::sample::select(vec![8usize, 16, 32, 64]),
        level in 1usize..5,
        size in 2usize..4,
        seed in any::<u64>(),
    ) {
        assert_roundtrip(&random_ciphertext(degree, level, size, seed));
    }

    #[test]
    fn plaintext_roundtrip(
        degree in prop::sample::select(vec![8usize, 16, 64]),
        level in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pt = Plaintext {
            poly: random_poly(degree, level, PolyForm::Ntt, &mut rng),
            scale_log2: rng.gen_range(-10.0..60.0),
            level,
        };
        assert_roundtrip(&pt);
    }

    #[test]
    fn public_key_roundtrip(
        degree in prop::sample::select(vec![8usize, 32]),
        level in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pk = PublicKey::from_parts(
            random_poly(degree, level, PolyForm::Ntt, &mut rng),
            random_poly(degree, level, PolyForm::Ntt, &mut rng),
        );
        assert_roundtrip(&pk);
    }

    #[test]
    fn relinearization_key_roundtrip(
        degree in prop::sample::select(vec![8usize, 32]),
        level in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rk = RelinearizationKey::from_key_switch_key(
            random_key_switch_key(degree, level, &mut rng),
        );
        assert_roundtrip(&rk);
    }

    #[test]
    fn galois_keys_roundtrip(
        degree in prop::sample::select(vec![8usize, 32]),
        level in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Distinct odd elements < 2N, one shared by two steps.
        let elts = [1u64, 3, 5];
        let steps: Vec<(i64, u64)> = vec![(-2, elts[0]), (1, elts[1]), (4, elts[2]), (7, elts[1])];
        let keys: Vec<(u64, KeySwitchKey)> = elts
            .iter()
            .map(|&e| (e, random_key_switch_key(degree, level, &mut rng)))
            .collect();
        assert_roundtrip(&GaloisKeys::from_parts(steps, keys));
    }
}

#[test]
fn corruption_never_panics_and_always_surfaces() {
    // Small fixed objects so the exhaustive truncation + bit-flip sweeps stay
    // cheap; every object family is covered.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    assert_corruption_total(&random_ciphertext(8, 2, 2, 7));
    assert_corruption_total(&Plaintext {
        poly: random_poly(8, 2, PolyForm::Ntt, &mut rng),
        scale_log2: 31.25,
        level: 2,
    });
    assert_corruption_total(&PublicKey::from_parts(
        random_poly(8, 2, PolyForm::Ntt, &mut rng),
        random_poly(8, 2, PolyForm::Ntt, &mut rng),
    ));
    assert_corruption_total(&RelinearizationKey::from_key_switch_key(
        random_key_switch_key(8, 2, &mut rng),
    ));
    let gk = GaloisKeys::from_parts(
        vec![(1, 5)],
        vec![(5, random_key_switch_key(8, 2, &mut rng))],
    );
    assert_corruption_total(&gk);
}

#[test]
fn wrong_magic_is_a_typed_error() {
    // A ciphertext buffer is not accepted by the plaintext decoder: the two
    // formats are distinguished by magic, not by guessing.
    let ct = random_ciphertext(8, 1, 2, 1);
    let err = Plaintext::from_wire_bytes(&ct.to_wire_bytes()).unwrap_err();
    assert!(matches!(err, WireError::BadMagic { .. }));
}
