//! Fault-tolerant deployment demo: a retrying client completes encrypted
//! Sobel edge detection **bit-identically** through injected transport
//! faults — delays past the server's read deadline, short reads, mid-frame
//! disconnects and in-transit bit flips — and a full server restart.
//!
//! The pieces on display:
//!
//! 1. [`ReliableClient`] retries transient failures with bounded
//!    exponential backoff + jitter, re-handshaking through the session
//!    ticket so every retry resumes the server's cached evaluation keys
//!    (`RETRY-RESUMED` events, `retry-eval-key-bytes: 0`);
//! 2. [`ChaosStream`] injects each fault class at a deterministic byte
//!    offset, so every recovery shown here is reproducible;
//! 3. the server's [`DiskKeyStore`] persists uploaded keys under their
//!    content fingerprint, so a **restarted** server still resumes warm
//!    (`restart-eval-key-bytes: 0`) — the fingerprint is re-verified on
//!    load, never trusted.
//!
//! Run with `cargo run --release --example chaos -- [image_side]`.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eva::backend::{execute_parallel, EncryptedContext};
use eva::ir::{compile, CompilerOptions};
use eva::service::{
    bytes_with_tag, frame_index, ChaosStream, EvaClient, EvaServer, Fault, RecordingStream,
    ReliableClient, RetryPolicy, ServerConfig, ServiceError, TAG_EVAL_KEYS,
};

const SEED: u64 = 7;

fn bit_identical(got: &HashMap<String, Vec<f64>>, expected: &HashMap<String, Vec<f64>>) -> bool {
    expected.iter().all(|(name, want)| {
        got.get(name).is_some_and(|have| {
            have.len() == want.len()
                && have
                    .iter()
                    .zip(want)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        })
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .skip(1)
        .find_map(|a| a.parse().ok())
        .unwrap_or(16);
    let program = eva::apps::image::sobel_program(n);
    let compiled = compile(&program, &CompilerOptions::default())?;
    let mut image = vec![0.0f64; n * n];
    for i in n / 4..3 * n / 4 {
        for j in n / 4..3 * n / 4 {
            image[i * n + j] = 0.2;
        }
    }
    let inputs: HashMap<String, Vec<f64>> = [("image".to_string(), image)].into_iter().collect();
    println!(
        "workload: encrypted {n}x{n} Sobel ({} nodes, N = {})",
        compiled.program.len(),
        compiled.parameters.degree,
    );

    // In-process encrypted run under the same seed: the bit-level oracle
    // every recovered evaluation below is compared against.
    let mut in_process = EncryptedContext::setup(&compiled, Some(SEED))?;
    let bindings = in_process.encrypt_inputs(&compiled, &inputs)?;
    let values = execute_parallel(in_process.evaluation(), &compiled, bindings, 2)?;
    let expected = in_process.decrypt_outputs(&compiled, &values)?;

    // ---- Server with a disk-backed key store under the memory cache. ----
    let store_dir = std::env::temp_dir().join(format!("eva-chaos-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let server = EvaServer::new(compiled.clone())?
        .with_threads(2)
        .with_key_store(&store_dir)?;
    let control = server.clone();
    let serve = std::thread::spawn(move || server.serve_forever(&listener));
    println!(
        "server: listening on {addr}, key store at {}",
        store_dir.display()
    );

    // ---- Cold session: upload keys, mint the resumption ticket. ---------
    let stream = RecordingStream::new(TcpStream::connect(addr)?);
    let mut client = EvaClient::handshake_deterministic(stream, SEED)?;
    let ticket = client
        .resumption_ticket()
        .expect("seeded sessions mint a resumption ticket");
    let outputs = client.evaluate(&inputs)?;
    if !bit_identical(&outputs, &expected) {
        return Err("cold session deviates from the in-process executor".into());
    }
    let cold_sent = client.finish()?.into_parts().1;
    println!(
        "cold session: {} evaluation-key bytes uploaded, outputs bit-identical",
        bytes_with_tag(&cold_sent, TAG_EVAL_KEYS)?
    );

    // ---- Clean warm session: zero key bytes, and the wire geometry the
    // fault plans below aim at (deterministic sessions repeat exactly). ----
    let stream = RecordingStream::new(TcpStream::connect(addr)?);
    let mut client = EvaClient::handshake_resuming_deterministic(stream, ticket)?;
    let outputs = client.evaluate(&inputs)?;
    if !bit_identical(&outputs, &expected) {
        return Err("warm session deviates from the in-process executor".into());
    }
    let (_, warm_sent, warm_received) = client.finish()?.into_parts();
    println!(
        "warm-reconnect-eval-key-bytes: {}",
        bytes_with_tag(&warm_sent, TAG_EVAL_KEYS)?
    );
    // Sent side: the resuming Hello frame, then Inputs. Received side: the
    // Manifest frame, then Outputs. Header = 1 tag byte + 8 length bytes.
    let hello_len = 9 + frame_index(&warm_sent)?[0].1;
    let manifest_len = 9 + frame_index(&warm_received)?[0].1;

    // ---- The retrying client, with a fault plan staged per connection. --
    let next_plan: Arc<Mutex<Vec<Fault>>> = Arc::default();
    let stage = Arc::clone(&next_plan);
    let connector = move |_attempt: u32| -> Result<_, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let plan = std::mem::take(&mut *next_plan.lock().unwrap());
        Ok(ChaosStream::new(RecordingStream::new(stream), plan))
    };
    let mut client = ReliableClient::new(connector, SEED, RetryPolicy::default())
        .with_ticket(ticket)
        .deterministic_for_tests();

    let rounds: [(&str, Vec<Fault>); 4] = [
        (
            "delay (stall past the server's read deadline)",
            vec![Fault::DelayWrite {
                at: hello_len + 40,
                delay: Duration::from_secs(3),
            }],
        ),
        (
            "short read (Outputs frame truncated)",
            vec![Fault::TruncateRead {
                at: manifest_len + 60,
            }],
        ),
        (
            "mid-frame disconnect (while uploading inputs)",
            vec![Fault::DisconnectWrite { at: hello_len + 60 }],
        ),
        (
            "bit flip (Outputs frame tag corrupted in transit)",
            vec![Fault::FlipReadBit {
                at: manifest_len,
                bit: 1,
            }],
        ),
    ];
    for (label, plan) in rounds {
        let needs_short_deadline = matches!(plan[0], Fault::DelayWrite { .. });
        if needs_short_deadline {
            let _ = control.clone().with_config(ServerConfig {
                read_deadline: Some(Duration::from_millis(1500)),
                ..ServerConfig::default()
            });
        }
        *stage.lock().unwrap() = plan;
        client.disconnect();
        let start = Instant::now();
        let outputs = client.evaluate(&inputs)?;
        if needs_short_deadline {
            let _ = control.clone().with_config(ServerConfig::default());
        }
        if !bit_identical(&outputs, &expected) {
            return Err(format!("fault `{label}`: recovered outputs deviate").into());
        }
        println!(
            "fault {label}: recovered in {:.2?}, outputs bit-identical",
            start.elapsed()
        );
    }

    for event in client.events() {
        println!("event: {event}");
    }
    let stats = client.stats();
    println!(
        "retry stats: {} attempts, {} retried evaluations, {} resumed retries",
        stats.attempts, stats.retried_evaluations, stats.resumed_retries
    );
    if stats.resumed_retries < 4 {
        return Err("not every fault class recovered through a resumed retry".into());
    }

    // The last retried session's upload: zero evaluation-key bytes.
    let last = client
        .finish()?
        .expect("a live session after the final round");
    let retry_sent = last.into_inner().into_parts().1;
    let retry_key_bytes = bytes_with_tag(&retry_sent, TAG_EVAL_KEYS)?;
    println!("retry-eval-key-bytes: {retry_key_bytes}");
    if retry_key_bytes != 0 {
        return Err("a retried session re-uploaded evaluation-key bytes".into());
    }

    control.shutdown();
    serve.join().expect("serve thread")?;
    let stats = control.stats();
    println!(
        "server stats: {} sessions ({} resumed, {} failed, {} panics), {} evaluations",
        stats.sessions_started,
        stats.resumed_sessions,
        stats.sessions_failed,
        stats.session_panics,
        stats.evaluations
    );

    // ---- Restart: a brand-new server process state, same store dir. -----
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let server = EvaServer::new(compiled)?
        .with_threads(2)
        .with_key_store(&store_dir)?;
    let control = server.clone();
    let serve = std::thread::spawn(move || server.serve_forever(&listener));
    let stream = RecordingStream::new(TcpStream::connect(addr)?);
    let mut client = EvaClient::handshake_resuming_deterministic(stream, ticket)?;
    println!("restart-warm-resumed: {}", client.resumed());
    if !client.resumed() {
        return Err("restarted server did not resume from the disk store".into());
    }
    let outputs = client.evaluate(&inputs)?;
    if !bit_identical(&outputs, &expected) {
        return Err("post-restart session deviates from the in-process executor".into());
    }
    let restart_sent = client.finish()?.into_parts().1;
    let restart_key_bytes = bytes_with_tag(&restart_sent, TAG_EVAL_KEYS)?;
    println!("restart-eval-key-bytes: {restart_key_bytes}");
    if restart_key_bytes != 0 {
        return Err("post-restart resumption uploaded evaluation-key bytes".into());
    }
    println!(
        "restart resumption served from disk ({} disk resumption(s))",
        control.stats().disk_resumptions
    );
    control.shutdown();
    serve.join().expect("serve thread")?;
    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(())
}
