//! Encrypted neural-network inference with the CHET-like frontend re-targeted
//! onto EVA (paper Section 7.2 / Table 5).
//!
//! Run with `cargo run --release --example dnn_inference`.

use std::collections::HashMap;
use std::time::Instant;

use eva::backend::{execute_parallel, EncryptedContext};
use eva::tensor::{lower_network, networks::lenet5_small, pack_input, LoweringMode, Tensor};
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = lenet5_small(42);
    let counts = network.layer_counts();
    println!(
        "{}: {} conv, {} fc, {} activations, ~{} FP ops per inference",
        network.name,
        counts.conv,
        counts.fc,
        counts.act,
        network.flop_count()
    );

    // A random "image" plays the role of an MNIST digit (see DESIGN.md on the
    // dataset substitution).
    let (c, h, w) = network.input_shape;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let image = Tensor::from_data(
        c,
        h,
        w,
        (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    );
    let plain_logits = network.infer_plain(&image);

    // Lower onto EVA, compile, and run encrypted inference.
    let lowered = lower_network(&network, LoweringMode::Eva);
    let compiled = lowered.compile()?;
    println!(
        "EVA program: {} nodes; parameters: N = {}, log2 Q = {}, r = {}",
        compiled.program.len(),
        compiled.parameters.degree,
        compiled.parameters.total_bits(),
        compiled.parameters.chain_length()
    );

    let start = Instant::now();
    let mut context = EncryptedContext::setup(&compiled, Some(7))?;
    println!("context + key generation: {:.2?}", start.elapsed());

    let packed = pack_input(&image, compiled.program.vec_size());
    let inputs: HashMap<String, Vec<f64>> =
        [(lowered.input_name.clone(), packed)].into_iter().collect();
    let start = Instant::now();
    let bindings = context.encrypt_inputs(&compiled, &inputs)?;
    println!("input encryption: {:.2?}", start.elapsed());

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let start = Instant::now();
    let values = execute_parallel(context.evaluation(), &compiled, bindings, threads)?;
    println!(
        "encrypted inference ({threads} threads): {:.2?}",
        start.elapsed()
    );

    let outputs = context.decrypt_outputs(&compiled, &values)?;
    let logits = lowered.extract_logits(&outputs[&lowered.output_name]);

    println!("plaintext logits: {plain_logits:.4?}");
    println!("encrypted logits: {logits:.4?}");
    let plain_argmax = argmax(&plain_logits);
    let enc_argmax = argmax(&logits);
    println!("predicted class: plaintext {plain_argmax}, encrypted {enc_argmax}");
    assert_eq!(
        plain_argmax, enc_argmax,
        "encrypted inference changed the prediction"
    );
    Ok(())
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}
