//! Quickstart: compile and homomorphically evaluate `x^2 + 3x + 1` on an
//! encrypted vector, end to end.
//!
//! Run with `cargo run --release --example quickstart`.

use std::collections::HashMap;
use std::time::Instant;

use eva::backend::{run_encrypted, run_reference};
use eva::frontend::ProgramBuilder;
use eva::ir::{compile, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author the program with the builder DSL (the PyEVA equivalent).
    let vec_size = 1024;
    let mut builder = ProgramBuilder::new("quickstart", vec_size);
    let x = builder.input_cipher("x", 30);
    let y = &(&x * &x) + &(&x * 3.0) + 1.0;
    builder.output("y", y, 30);
    let program = builder.build();
    println!(
        "program: {} nodes, depth {}",
        program.len(),
        program.multiplicative_depth()
    );

    // 2. Compile: the EVA compiler inserts RESCALE/MODSWITCH/RELINEARIZE and
    //    selects encryption parameters and rotation keys.
    let compiled = compile(&program, &CompilerOptions::default())?;
    println!(
        "compiled: N = {}, log2 Q = {} bits, modulus chain length r = {}",
        compiled.parameters.degree,
        compiled.parameters.total_bits(),
        compiled.parameters.chain_length()
    );

    // 3. Execute homomorphically and compare against the reference semantics.
    let inputs: HashMap<String, Vec<f64>> = [(
        "x".to_string(),
        (0..vec_size)
            .map(|i| (i as f64 / vec_size as f64) - 0.5)
            .collect(),
    )]
    .into_iter()
    .collect();
    let expected = run_reference(&compiled.program, &inputs)?;
    let start = Instant::now();
    let outputs = run_encrypted(&compiled, &inputs)?;
    println!("encrypted evaluation took {:.2?}", start.elapsed());

    let max_err = outputs["y"]
        .iter()
        .zip(&expected["y"])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("maximum error vs plaintext reference: {max_err:.2e}");
    assert!(
        max_err < 1e-2,
        "encrypted result drifted from the reference"
    );
    println!("ok: encrypted result matches the plaintext reference");
    Ok(())
}
