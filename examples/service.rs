//! Client/server deployment over a real localhost TCP socket: the paper's
//! Section 2 scenario end to end.
//!
//! A server thread loads a compiled program (encrypted Sobel edge detection
//! by default, LeNet-5 inference with `--lenet`); a client generates every
//! key locally, uploads only the evaluation keys, encrypts its input, and
//! decrypts the returned ciphertexts. The example then proves two things:
//!
//! 1. the decrypted results are **bit-identical** to the in-process
//!    encrypted executor under the same seed (and within the ≤ 1e-4
//!    regression bound of the plaintext reference),
//! 2. the secret key's bytes never appeared in either direction of the
//!    captured socket traffic (`secret-key-on-wire: CLEAN`),
//! 3. a **warm reconnect** resumes the server's cached evaluation keys via
//!    the session ticket: the second session's transcript carries **zero**
//!    evaluation-key bytes (`warm-reconnect-eval-key-bytes: 0`) while its
//!    outputs still match the in-process executor (numerically, not
//!    bitwise — resumed sessions deliberately draw fresh encryption
//!    randomness).
//!
//! Run with `cargo run --release --example service -- [image_side | --lenet]`.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use eva::backend::{execute_parallel, run_reference, EncryptedContext};
use eva::ir::{compile, CompilerOptions};
use eva::service::{
    bytes_with_tag, contains_bytes, EvaClient, EvaServer, RecordingStream, TAG_EVAL_KEYS,
    TAG_INPUTS,
};

const SEED: u64 = 7;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lenet = args.iter().any(|a| a == "--lenet");

    // ---- Compile the workload and prepare its inputs. -------------------
    let (compiled, inputs, label) = if lenet {
        let network = eva::tensor::networks::lenet5_small(1);
        let lowered = eva::tensor::lower_network(&network, eva::tensor::LoweringMode::Eva);
        let compiled = lowered.compile()?;
        let image = {
            use eva::tensor::Tensor;
            let (c, h, w) = network.input_shape;
            Tensor::from_data(
                c,
                h,
                w,
                (0..c * h * w)
                    .map(|i| ((i as f64) * 0.37).sin() * 0.5)
                    .collect(),
            )
        };
        let packed = eva::tensor::pack_input(&image, compiled.program.vec_size());
        let inputs: HashMap<String, Vec<f64>> =
            [(lowered.input_name.clone(), packed)].into_iter().collect();
        (compiled, inputs, "LeNet-5-small inference".to_string())
    } else {
        let n: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(16);
        let program = eva::apps::image::sobel_program(n);
        let compiled = compile(&program, &CompilerOptions::default())?;
        let mut image = vec![0.0f64; n * n];
        for i in n / 4..3 * n / 4 {
            for j in n / 4..3 * n / 4 {
                image[i * n + j] = 0.2;
            }
        }
        let inputs: HashMap<String, Vec<f64>> =
            [("image".to_string(), image)].into_iter().collect();
        (compiled, inputs, format!("{n}x{n} Sobel edge detection"))
    };
    println!(
        "workload: encrypted {label} ({} nodes, N = {}, r = {}, rotation keys = {})",
        compiled.program.len(),
        compiled.parameters.degree,
        compiled.parameters.chain_length(),
        compiled.rotation_steps.len(),
    );

    // ---- In-process encrypted run (same seed) as the ground truth. ------
    let mut in_process = EncryptedContext::setup(&compiled, Some(SEED))?;
    let bindings = in_process.encrypt_inputs(&compiled, &inputs)?;
    let values = execute_parallel(in_process.evaluation(), &compiled, bindings, 2)?;
    let expected = in_process.decrypt_outputs(&compiled, &values)?;
    let reference = run_reference(&compiled.program, &inputs)?;

    // ---- Serve the compiled program on a localhost socket. --------------
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    println!("server: listening on {addr}, keys stay client-side");
    let server = EvaServer::new(compiled.clone())?.with_threads(2);
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    // ---- Client session over an instrumented stream. --------------------
    let start = Instant::now();
    let stream = RecordingStream::new(TcpStream::connect(addr)?);
    // Deterministic mode (test/demo only): everything derives from SEED so
    // the socket run can be compared bit-for-bit with the in-process one.
    let mut client = EvaClient::handshake_deterministic(stream, SEED)?;
    println!(
        "client: handshake + key generation + evaluation-key upload took {:.2?}",
        start.elapsed()
    );
    let start = Instant::now();
    let outputs = client.evaluate(&inputs)?;
    println!("client: encrypted round trip took {:.2?}", start.elapsed());

    // ---- Verify against the in-process executor and the reference. ------
    let mut max_vs_in_process = 0.0f64;
    let mut max_vs_reference = 0.0f64;
    for (name, got) in &outputs {
        for (a, b) in got.iter().zip(&expected[name]) {
            max_vs_in_process = max_vs_in_process.max((a - b).abs());
        }
        for (a, b) in got.iter().zip(&reference[name]) {
            max_vs_reference = max_vs_reference.max((a - b).abs());
        }
    }
    println!(
        "max |service - in-process executor| = {max_vs_in_process:.2e}, \
         max |service - plaintext reference| = {max_vs_reference:.2e}"
    );
    assert!(
        max_vs_in_process <= 1e-4,
        "service outputs deviate from the in-process executor"
    );
    println!("client/server outputs match in-process executor (<=1e-4)");

    // ---- Leak audit: the secret key must never touch the socket. --------
    let probe = client.secret_key_probe();
    let ticket = client
        .resumption_ticket()
        .expect("seeded sessions mint a resumption ticket");
    let stream = client.finish()?;
    let (sent, received) = (stream.sent().to_vec(), stream.received().to_vec());
    println!(
        "traffic: {} bytes uploaded (hello + evaluation keys + seeded encrypted inputs), \
         {} bytes downloaded (manifest + encrypted outputs)",
        sent.len(),
        received.len()
    );
    println!(
        "traffic: evaluation keys {} bytes, inputs {} bytes (seeded EVAD transport)",
        bytes_with_tag(&sent, TAG_EVAL_KEYS)?,
        bytes_with_tag(&sent, TAG_INPUTS)?,
    );
    let leaked = probe
        .chunks(32)
        .any(|chunk| contains_bytes(&sent, chunk) || contains_bytes(&received, chunk));
    if leaked {
        println!("secret-key-on-wire: LEAKED");
        return Err("secret key bytes found in captured socket traffic".into());
    }
    println!("secret-key-on-wire: CLEAN");

    // ---- Warm reconnect: session resumption via cached evaluation keys. --
    // The ticket's seed re-derives the same keys; encryption randomness is
    // fresh OS entropy, so the warm outputs agree numerically (not bitwise)
    // with the first session.
    let start = Instant::now();
    let stream = RecordingStream::new(TcpStream::connect(addr)?);
    let mut client = EvaClient::handshake_resuming(stream, ticket)?;
    println!(
        "client: warm reconnect (resumed = {}) took {:.2?}",
        client.resumed(),
        start.elapsed()
    );
    if !client.resumed() {
        return Err("server did not resume the cached evaluation keys".into());
    }
    let warm_outputs = client.evaluate(&inputs)?;
    let mut max_warm = 0.0f64;
    for (name, got) in &warm_outputs {
        for (a, b) in got.iter().zip(&expected[name]) {
            max_warm = max_warm.max((a - b).abs());
        }
    }
    // Two independently-noised encryptions (deterministic cold run + fresh-
    // entropy warm run) can differ by the sum of two noise draws, so the
    // bound is twice the single-run one.
    assert!(
        max_warm <= 2e-4,
        "warm-reconnect outputs deviate from the in-process executor"
    );
    let stream = client.finish()?;
    let warm_sent = stream.sent().to_vec();
    let warm_key_bytes = bytes_with_tag(&warm_sent, TAG_EVAL_KEYS)?;
    println!(
        "traffic: warm session uploaded {} bytes total ({} input bytes)",
        warm_sent.len(),
        bytes_with_tag(&warm_sent, TAG_INPUTS)?,
    );
    println!("warm-reconnect-eval-key-bytes: {warm_key_bytes}");
    if warm_key_bytes != 0 {
        return Err("warm reconnect uploaded evaluation-key bytes".into());
    }
    println!("warm reconnect outputs match in-process executor (<=2e-4)");

    server_thread
        .join()
        .expect("server thread")?
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;

    // ---- Load gate: a malformed `.evaprog` is refused, never served. ----
    // Corrupt the compiled program the way a broken (or hostile) producer
    // would — here by dropping a rotation step from the Galois-key request —
    // write it to disk, and show the server's verifier refusing the bundle
    // with named diagnostics instead of panicking mid-session.
    let mut corrupted = compiled.clone();
    corrupted.rotation_steps.remove(0);
    let path =
        std::env::temp_dir().join(format!("eva-service-demo-{}.evaprog", std::process::id()));
    std::fs::write(&path, eva::ir::serialize::compiled_to_bytes(&corrupted))?;
    match EvaServer::from_program_file(&path) {
        Err(eva::service::ServiceError::InvalidProgram(diagnostics)) => {
            println!(
                "malformed-program-load: REFUSED ({} finding(s): {})",
                diagnostics.diagnostics.len(),
                diagnostics
                    .diagnostics
                    .iter()
                    .map(|d| format!("[{}]", d.check))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        Err(other) => {
            std::fs::remove_file(&path).ok();
            return Err(format!("expected a verifier refusal, got: {other}").into());
        }
        Ok(_) => {
            std::fs::remove_file(&path).ok();
            return Err("malformed program was accepted by the load gate".into());
        }
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
