//! Encrypted Sobel edge detection on a synthetic image (paper Figure 6 /
//! Table 8).
//!
//! Run with `cargo run --release --example sobel -- [image_side]`.

use std::collections::HashMap;
use std::time::Instant;

use eva::apps::image::{sobel_program, sobel_reference};
use eva::backend::run_encrypted;
use eva::ir::{compile, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    println!("Sobel filter on an encrypted {n}x{n} image");

    // A synthetic image with a bright square in the middle: strong edges along
    // the square's border.
    let mut image = vec![0.0f64; n * n];
    for i in n / 4..3 * n / 4 {
        for j in n / 4..3 * n / 4 {
            image[i * n + j] = 0.2;
        }
    }

    let program = sobel_program(n);
    let compiled = compile(&program, &CompilerOptions::default())?;
    println!(
        "compiled: {} nodes, N = {}, r = {}, rotations = {:?}",
        compiled.program.len(),
        compiled.parameters.degree,
        compiled.parameters.chain_length(),
        compiled.rotation_steps
    );

    let inputs: HashMap<String, Vec<f64>> =
        [("image".to_string(), image.clone())].into_iter().collect();
    let start = Instant::now();
    let outputs = run_encrypted(&compiled, &inputs)?;
    println!("encrypted Sobel took {:.2?}", start.elapsed());

    let expected = sobel_reference(&image, n);
    let max_err = outputs["edges"]
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("maximum error vs plaintext Sobel: {max_err:.2e}");

    // Render a coarse ASCII visualisation of the detected edges.
    println!("edge magnitude map (encrypted computation):");
    for i in (0..n).step_by((n / 16).max(1)) {
        let row: String = (0..n)
            .step_by((n / 16).max(1))
            .map(|j| {
                let v = outputs["edges"][i * n + j].abs();
                if v > 0.3 {
                    '#'
                } else if v > 0.05 {
                    '+'
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {row}");
    }
    Ok(())
}
