//! # EVA: Encrypted Vector Arithmetic — umbrella crate
//!
//! This crate re-exports the public API of the EVA reproduction workspace so a
//! downstream user can depend on a single crate:
//!
//! * [`ir`] — the EVA language / intermediate representation and the optimizing
//!   compiler ([`eva_core`]).
//! * [`ckks`] — the RNS-CKKS fully-homomorphic encryption scheme used as the
//!   execution target (stand-in for Microsoft SEAL).
//! * [`backend`] — reference, CKKS and parallel executors for compiled programs.
//! * [`frontend`] — an embedded builder DSL equivalent to the paper's PyEVA.
//! * [`tensor`] — the CHET-like deep-neural-network-to-EVA compiler.
//! * [`apps`] — the arithmetic, statistical-ML and image-processing applications
//!   evaluated in the paper.
//! * [`wire`] — binary wire codecs for everything that crosses the
//!   client/server trust boundary (secret keys deliberately excluded).
//! * [`service`] — TCP deployment of compiled programs: keys stay
//!   client-side, ciphertexts travel, an untrusted server executes.
//!
//! ## Quickstart
//!
//! ```
//! use eva::frontend::ProgramBuilder;
//! use eva::compile_and_run;
//!
//! // Compute x^2 + x on an encrypted vector of 8 slots.
//! let mut b = ProgramBuilder::new("quickstart", 8);
//! let x = b.input_cipher("x", 30);
//! let y = &x * &x + &x;
//! b.output("y", y, 30);
//! let program = b.build();
//!
//! let inputs = vec![("x".to_string(), vec![0.5; 8])];
//! let outputs = compile_and_run(&program, &inputs).unwrap();
//! let y = &outputs["y"];
//! assert!((y[0] - 0.75).abs() < 1e-3);
//! ```

pub use eva_apps as apps;
pub use eva_backend as backend;
pub use eva_ckks as ckks;
pub use eva_core as ir;
pub use eva_frontend as frontend;
pub use eva_math as math;
pub use eva_poly as poly;
pub use eva_service as service;
pub use eva_tensor as tensor;
pub use eva_wire as wire;

use std::collections::HashMap;

/// Compiles a frontend-built program with default options, generates CKKS keys,
/// encrypts the named inputs, executes homomorphically and decrypts the outputs.
///
/// This is the "do everything" convenience entry point used by the examples; the
/// individual steps are available through [`ir`], [`ckks`] and [`backend`] when a
/// caller needs to keep keys or ciphertexts around.
///
/// # Errors
///
/// Returns an error if compilation fails validation or if execution encounters a
/// mismatch between the program and the supplied inputs.
pub fn compile_and_run(
    program: &eva_core::Program,
    inputs: &[(String, Vec<f64>)],
) -> Result<HashMap<String, Vec<f64>>, eva_core::EvaError> {
    let options = eva_core::CompilerOptions::default();
    let compiled = eva_core::compile(program, &options)?;
    let input_map: HashMap<String, Vec<f64>> = inputs.iter().cloned().collect();
    eva_backend::run_encrypted(&compiled, &input_map)
}
