//! End-to-end integration tests: author → compile → encrypt → execute →
//! decrypt, compared against the reference semantics.

use std::collections::HashMap;

use eva::backend::{execute_parallel, run_encrypted, run_reference, EncryptedContext};
use eva::frontend::ProgramBuilder;
use eva::ir::{compile, CompilerOptions};

fn close(a: &[f64], b: &[f64], tolerance: f64) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < tolerance, "slot {i}: {x} vs {y}");
    }
}

#[test]
fn umbrella_compile_and_run_helper_works() {
    let mut builder = ProgramBuilder::new("helper", 16);
    let x = builder.input_cipher("x", 30);
    let y = &x * &x - &x + 0.5;
    builder.output("y", y, 30);
    let program = builder.build();

    let inputs = vec![("x".to_string(), vec![0.25; 16])];
    let outputs = eva::compile_and_run(&program, &inputs).unwrap();
    assert!((outputs["y"][0] - (0.0625 - 0.25 + 0.5)).abs() < 1e-3);
}

#[test]
fn statistics_kernel_with_rotations_end_to_end() {
    // Mean of 16 encrypted values via rotate-and-add reduction, a pattern the
    // fully-connected DNN kernels rely on.
    let size = 16;
    let mut builder = ProgramBuilder::new("mean", size);
    let x = builder.input_cipher("x", 30);
    let mut acc = x.clone();
    let mut shift = 1;
    while shift < size {
        acc = &acc + &acc.rotate_left(shift as i32);
        shift <<= 1;
    }
    let mean = &acc * (1.0 / size as f64);
    builder.output("mean", mean, 30);
    let program = builder.build();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();

    let values: Vec<f64> = (0..size).map(|i| i as f64 / 10.0).collect();
    let expected_mean = values.iter().sum::<f64>() / size as f64;
    let inputs: HashMap<String, Vec<f64>> = [("x".to_string(), values)].into_iter().collect();

    let reference = run_reference(&compiled.program, &inputs).unwrap();
    close(&reference["mean"], &vec![expected_mean; size], 1e-9);

    let encrypted = run_encrypted(&compiled, &inputs).unwrap();
    close(&encrypted["mean"], &reference["mean"], 1e-3);
}

#[test]
fn serial_and_parallel_executors_agree_on_an_application() {
    // Sobel on a small image, executed with both executors.
    let app = eva::apps::image::sobel(16, 9);
    let compiled = compile(&app.program, &CompilerOptions::default()).unwrap();

    let mut context = EncryptedContext::setup(&compiled, Some(123)).unwrap();
    let bindings = context.encrypt_inputs(&compiled, &app.inputs).unwrap();
    let serial_values = context.execute_serial(&compiled, bindings).unwrap();
    let serial = context.decrypt_outputs(&compiled, &serial_values).unwrap();

    let bindings = context.encrypt_inputs(&compiled, &app.inputs).unwrap();
    let parallel_values = execute_parallel(context.evaluation(), &compiled, bindings, 2).unwrap();
    let parallel = context
        .decrypt_outputs(&compiled, &parallel_values)
        .unwrap();

    // The two runs encrypt the inputs with fresh randomness, so they agree up
    // to CKKS noise rather than exactly.
    close(&serial["edges"], &parallel["edges"], 1e-3);
    close(&serial["edges"], &app.expected["edges"], 1e-2);
}

#[test]
fn regression_applications_run_encrypted() {
    for app in [
        eva::apps::regression::linear(64, 5),
        eva::apps::regression::polynomial(64, 6),
    ] {
        let compiled = compile(&app.program, &CompilerOptions::default()).unwrap();
        let outputs = run_encrypted(&compiled, &app.inputs).unwrap();
        for (name, expected) in &app.expected {
            close(&outputs[name], expected, app.tolerance);
        }
    }
}
