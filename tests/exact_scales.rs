//! Property-based integration test for exact scale tracking: the compiler's
//! per-node scale annotations must be **bit-identical** (as `f64`s) to the
//! scales the encrypted executor observes, across random programs with deep
//! rescale chains.
//!
//! Every instruction executed by `EncryptedContext::execute_node` also runs a
//! `debug_assert!` comparing observed vs annotated scale, so (with debug
//! assertions on, as in `cargo test` and the CI debug job) a single encrypted
//! run checks *every* node, not only the outputs asserted here.

use std::collections::HashMap;

use eva::backend::{EncryptedContext, NodeValue};
use eva::ir::{compile, CompilerOptions, ModSwitchStrategy, Opcode, Program, RescaleStrategy};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random DAG with a deep squaring tail so waterline insertion produces a
/// rescale chain of at least `depth` levels.
fn random_deep_program(seed: u64, budget: usize, depth: usize) -> Program {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut program = Program::new(format!("deep_{seed}"), 8);
    let mut pool = vec![
        program.input_cipher("a", rng.gen_range(40..=55)),
        program.input_cipher("b", rng.gen_range(40..=55)),
        program.input_vector("v", rng.gen_range(10..=20)),
    ];
    for _ in 0..budget {
        let lhs = pool[rng.gen_range(0..pool.len())];
        let rhs = pool[rng.gen_range(0..pool.len())];
        let node = match rng.gen_range(0..6) {
            0 => program.instruction(Opcode::Add, &[lhs, rhs]),
            1 => program.instruction(Opcode::Sub, &[lhs, rhs]),
            2 | 3 => program.instruction(Opcode::Multiply, &[lhs, rhs]),
            4 => program.instruction(Opcode::RotateLeft(rng.gen_range(0..4)), &[lhs]),
            _ => program.instruction(Opcode::Negate, &[lhs]),
        };
        pool.push(node);
    }
    // Deep tail: repeated squaring forces >= `depth` waterline rescales, and
    // the add of the (mod-switched) original exercises the drift correction.
    let mut acc = *pool
        .iter()
        .rev()
        .find(|&&n| program.node(n).ty.is_cipher())
        .expect("cipher nodes exist");
    let start = acc;
    for _ in 0..depth {
        acc = program.instruction(Opcode::Multiply, &[acc, acc]);
    }
    let rejoin = program.instruction(Opcode::Multiply, &[acc, start]);
    program.output("deep", rejoin, 30);
    program.output("mid", acc, 30);
    program
}

fn random_inputs(seed: u64) -> HashMap<String, Vec<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
    ["a", "b", "v"]
        .iter()
        .map(|&name| {
            (
                name.to_string(),
                (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiler_scales_are_bit_identical_to_executor_scales(
        seed in any::<u64>(),
        budget in 3usize..12,
        depth in 3usize..5,
    ) {
        let program = random_deep_program(seed, budget, depth);
        for (rescale, mod_switch) in [
            (RescaleStrategy::Waterline, ModSwitchStrategy::Eager),
            (RescaleStrategy::Waterline, ModSwitchStrategy::Lazy),
        ] {
            let options =
                CompilerOptions { rescale, mod_switch, max_rescale_bits: 60, ..Default::default() };
            let Ok(mut compiled) = compile(&program, &options) else {
                // Oversized random programs may exceed every ring degree.
                continue;
            };
            let rescales = compiled
                .program
                .opcode_histogram()
                .get("rescale")
                .copied()
                .unwrap_or(0);
            prop_assert!(rescales >= depth.min(3),
                "the squaring tail must produce a deep rescale chain");

            // Scale bookkeeping is degree-independent, and the compiler's
            // primes (chosen for a large secure degree, q = 1 mod 2N) remain
            // NTT-friendly for any smaller power-of-two degree. Shrink the
            // ring so each proptest case runs in milliseconds.
            compiled.parameters.degree = 1024;
            compiled.parameters.secure = false;

            let mut ctx = EncryptedContext::setup(&compiled, Some(seed ^ 1)).unwrap();
            let bindings = ctx.encrypt_inputs(&compiled, &random_inputs(seed)).unwrap();
            // execute_serial runs the per-node debug_assert over every live
            // instruction; the explicit check below re-verifies the outputs.
            let values = ctx.execute_serial(&compiled, bindings).unwrap();
            for output in compiled.program.outputs() {
                let Some(NodeValue::Cipher(ct)) = values.get(&output.node) else {
                    continue;
                };
                let annotated = compiled.program.node(output.node).scale_log2;
                prop_assert!(
                    ct.scale_log2().to_bits() == annotated.to_bits(),
                    "output {}: executor scale 2^{} vs compiler annotation 2^{}",
                    &output.name,
                    ct.scale_log2(),
                    annotated
                );
            }
        }
    }
}
