//! Integration tests reproducing the paper's worked examples:
//! Figure 2 (x²y³), Figure 3 (x² + x) and Figure 5 (x² + x + x).

use eva::ir::passes::{
    insert_always_rescale, insert_eager_modswitch, insert_lazy_modswitch, insert_match_scale,
    insert_relinearize, insert_waterline_rescale,
};
use eva::ir::{compile, CompilerOptions, ModSwitchStrategy, Opcode, Program, RescaleStrategy};

fn x2y3(x_scale: u32, y_scale: u32) -> Program {
    let mut p = Program::new("x2y3", 8);
    let x = p.input_cipher("x", x_scale);
    let y = p.input_cipher("y", y_scale);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let y2 = p.instruction(Opcode::Multiply, &[y, y]);
    let y3 = p.instruction(Opcode::Multiply, &[y2, y]);
    let out = p.instruction(Opcode::Multiply, &[x2, y3]);
    p.output("out", out, 30);
    p
}

fn x2_plus_x() -> Program {
    let mut p = Program::new("x2_plus_x", 8);
    let x = p.input_cipher("x", 30);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let sum = p.instruction(Opcode::Add, &[x2, x]);
    p.output("out", sum, 30);
    p
}

fn x2_plus_x_plus_x() -> Program {
    let mut p = Program::new("x2xx", 8);
    let x = p.input_cipher("x", 60);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let add1 = p.instruction(Opcode::Add, &[x2, x]);
    let add2 = p.instruction(Opcode::Add, &[add1, x]);
    p.output("out", add2, 60);
    p
}

#[test]
fn figure_2_waterline_beats_always_rescale() {
    // Figure 2(b): always-rescale inserts one rescale per multiplication.
    let mut always = x2y3(60, 30);
    assert_eq!(insert_always_rescale(&mut always), 4);

    // Figure 2(d): waterline rescaling only needs two.
    let mut waterline = x2y3(60, 30);
    assert_eq!(insert_waterline_rescale(&mut waterline, 60), 2);

    // Figure 2(e): relinearization follows every ciphertext multiplication.
    assert_eq!(insert_relinearize(&mut waterline), 4);
    let histogram = waterline.opcode_histogram();
    assert_eq!(histogram.get("rescale"), Some(&2));
    assert_eq!(histogram.get("relinearize"), Some(&4));
}

#[test]
fn figure_3_match_scale_avoids_extra_primes() {
    // Figure 3(b): solving the scale mismatch with rescale + modswitch consumes
    // a modulus prime; Figure 3(c)'s MATCH-SCALE multiplication does not.
    let mut with_match_scale = x2_plus_x();
    assert_eq!(insert_waterline_rescale(&mut with_match_scale, 60), 0);
    assert_eq!(insert_match_scale(&mut with_match_scale), 1);
    let compiled = compile(&x2_plus_x(), &CompilerOptions::default()).unwrap();
    // The compiled program consumes no primes before the output tail: the chain
    // holds only the output-scale primes plus the special prime.
    let rescale_like = compiled
        .program
        .opcode_histogram()
        .get("rescale")
        .copied()
        .unwrap_or(0)
        + compiled
            .program
            .opcode_histogram()
            .get("mod_switch")
            .copied()
            .unwrap_or(0);
    assert_eq!(
        rescale_like, 0,
        "MATCH-SCALE must not consume modulus primes"
    );
    assert_eq!(compiled.stats.scale_fixes_inserted, 1);
}

#[test]
fn figure_5_eager_shares_modswitch_lazy_duplicates_it() {
    let mut eager = x2_plus_x_plus_x();
    insert_waterline_rescale(&mut eager, 60);
    let eager_count = insert_eager_modswitch(&mut eager);

    let mut lazy = x2_plus_x_plus_x();
    insert_waterline_rescale(&mut lazy, 60);
    let lazy_count = insert_lazy_modswitch(&mut lazy);

    assert_eq!(eager_count, 1, "Figure 5(c): one shared MODSWITCH");
    assert_eq!(lazy_count, 2, "Figure 5(b): one MODSWITCH per ADD");
}

#[test]
fn compiled_programs_always_validate_across_strategies() {
    for program in [x2y3(60, 30), x2y3(40, 25), x2_plus_x(), x2_plus_x_plus_x()] {
        for mod_switch in [ModSwitchStrategy::Eager, ModSwitchStrategy::Lazy] {
            let options = CompilerOptions {
                rescale: RescaleStrategy::Waterline,
                mod_switch,
                max_rescale_bits: 60,
                ..CompilerOptions::default()
            };
            let compiled = compile(&program, &options).expect("compilation must succeed");
            assert!(compiled.parameters.chain_length() >= 2);
        }
    }
}
