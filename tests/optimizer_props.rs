//! Property-based tests for the analysis-driven optimizer.
//!
//! Three properties from the optimizer's contract, plus an extension of the
//! verifier mutation corpus to optimized programs:
//!
//! 1. **Verified output** — every optimized compile passes `verify_compiled`
//!    with zero errors (the in-pipeline guards re-check after each pass; this
//!    re-checks the final artifact from outside).
//! 2. **Bit-identity of the structural subset** — CSE + DCE are
//!    bit-preserving: a twin compiled with only those passes decrypts to
//!    exactly the same `f64` bits as the unoptimized twin after encrypted
//!    execution with the same seed, whenever both twins select the same
//!    encryption parameters. (The rotation passes are only
//!    *value*-preserving — they re-associate sums and re-encode constants —
//!    so they are excluded here and covered by tolerance-based tests.
//!    Parameters can legitimately differ when the unoptimized twin carries a
//!    dead cipher branch with a deeper rescale chain than any live path:
//!    parameter selection runs before the final dead-code sweep, so only the
//!    optimized twin gets the smaller modulus chain. That is an optimizer
//!    win, not a bug — in that case the outputs agree to working precision
//!    instead of bitwise.)
//! 3. **Monotone cost** — the fully optimized twin never has more nodes,
//!    rotations, distinct rotation steps or key switches than the
//!    unoptimized twin.
//! 4. **Mutation corpus** — corrupting an optimized compiled program (a
//!    rotation by an unrequested step smuggled in front of an output) is
//!    caught by the matching named check.

use std::collections::HashMap;

use eva::backend::{execute_parallel, EncryptedContext, NodeValue};
use eva::ir::analysis::verifier::{verify_compiled, Check};
use eva::ir::{
    compile, estimate_cost, CompiledProgram, CompilerOptions, CostModel, NodeKind, Opcode, Program,
    ValueType,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Same shape as the generator in `verifier_props.rs`: a random DAG over
/// cipher/plain inputs with arithmetic, rotations and negation. Random
/// programs are duplicate-heavy (small pools resample the same operands), so
/// CSE and DCE both get real work.
fn random_program(seed: u64, node_budget: usize) -> Program {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vec_size = 16usize;
    let mut program = Program::new(format!("random_{seed}"), vec_size);
    let mut pool = vec![
        program.input_cipher("a", rng.gen_range(20..=35)),
        program.input_cipher("b", rng.gen_range(20..=35)),
        program.input_vector("v", rng.gen_range(10..=20)),
    ];
    for _ in 0..node_budget {
        let lhs = pool[rng.gen_range(0..pool.len())];
        let rhs = pool[rng.gen_range(0..pool.len())];
        let node = match rng.gen_range(0..6) {
            0 => program.instruction(Opcode::Add, &[lhs, rhs]),
            1 => program.instruction(Opcode::Sub, &[lhs, rhs]),
            2 | 3 => program.instruction(Opcode::Multiply, &[lhs, rhs]),
            4 => program.instruction(Opcode::RotateLeft(rng.gen_range(0..8)), &[lhs]),
            _ => program.instruction(Opcode::Negate, &[lhs]),
        };
        pool.push(node);
    }
    let outputs = pool.len().saturating_sub(2);
    for (i, &node) in pool[outputs..].iter().enumerate() {
        if program.node(node).ty.is_cipher() {
            program.output(format!("out{i}"), node, 30);
        }
    }
    if program.outputs().is_empty() {
        program.output("fallback", pool[0], 30);
    }
    program
}

fn inputs_for(seed: u64) -> HashMap<String, Vec<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
    ["a", "b", "v"]
        .iter()
        .map(|name| {
            let v: Vec<f64> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
            (name.to_string(), v)
        })
        .collect()
}

/// Options with only the bit-preserving structural passes enabled.
fn cse_dce_only() -> CompilerOptions {
    let mut options = CompilerOptions::default();
    options.optimizer.rotation_min = false;
    options
}

/// One seeded encrypted execution: setup, encrypt, run, decrypt.
fn run_seeded(
    compiled: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    seed: u64,
) -> HashMap<String, Vec<f64>> {
    let mut context = EncryptedContext::setup(compiled, Some(seed)).expect("setup");
    let bindings = context.encrypt_inputs(compiled, inputs).expect("encrypt");
    let values = context.execute_serial(compiled, bindings).expect("execute");
    context.decrypt_outputs(compiled, &values).expect("decrypt")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // (1) The fully optimized artifact passes the standalone verifier.
    #[test]
    fn optimized_programs_verify_cleanly(seed in any::<u64>(), budget in 3usize..25) {
        if let Ok(compiled) = compile(&random_program(seed, budget), &CompilerOptions::default()) {
            let report = verify_compiled(&compiled);
            prop_assert!(report.is_clean(), "optimized output failed verification:\n{report}");
        }
    }

    // (3) Optimization never increases the static cost counters.
    #[test]
    fn optimization_is_cost_monotone(seed in any::<u64>(), budget in 3usize..25) {
        let program = random_program(seed, budget);
        let (Ok(unopt), Ok(opt)) = (
            compile(&program, &CompilerOptions::unoptimized()),
            compile(&program, &CompilerOptions::default()),
        ) else { return Ok(()); };
        let model = CostModel::default();
        let before = estimate_cost(&unopt, &model).unwrap();
        let after = estimate_cost(&opt, &model).unwrap();
        prop_assert!(after.nodes <= before.nodes, "{} > {} nodes", after.nodes, before.nodes);
        prop_assert!(after.rotations <= before.rotations,
            "{} > {} rotations", after.rotations, before.rotations);
        prop_assert!(after.distinct_rotation_steps <= before.distinct_rotation_steps,
            "{} > {} steps", after.distinct_rotation_steps, before.distinct_rotation_steps);
        prop_assert!(after.key_switches <= before.key_switches,
            "{} > {} key switches", after.key_switches, before.key_switches);
    }

    // (4) Mutation corpus, extended to optimized programs: a rotation by an
    // unrequested step inserted in front of an output must be caught by the
    // rotation-key coverage check.
    #[test]
    fn smuggled_rotation_step_is_caught(seed in any::<u64>(), budget in 6usize..25) {
        let Ok(mut compiled) = compile(&random_program(seed, budget), &CompilerOptions::default())
        else { return Ok(()); };
        let vec_size = compiled.program.vec_size() as i64;
        // A canonical step the compiled program did not request a key for.
        let Some(step) = (1..vec_size).find(|s| !compiled.rotation_steps.contains(s))
        else { return Ok(()); };
        let out_node = compiled.program.outputs()[0].node;
        let scale = compiled.program.node(out_node).scale_log2;
        let extra = compiled.program.push_instruction(
            Opcode::RotateLeft(step as i32),
            vec![out_node],
            ValueType::Cipher,
        );
        compiled.program.set_scale_log2(extra, scale);
        compiled.program.redirect_outputs(out_node, extra);
        let report = verify_compiled(&compiled);
        prop_assert!(report.has_error(Check::RotationKeys),
            "uncovered rotation step {step} survived verification:\n{report}");
    }
}

proptest! {
    // Encrypted executions are expensive; fewer cases, still fresh programs
    // every run.
    #![proptest_config(ProptestConfig::with_cases(8))]

    // (2) CSE + DCE are bit-preserving through the encrypted backend.
    #[test]
    fn cse_dce_twin_is_bit_identical(seed in any::<u64>(), budget in 3usize..14) {
        let program = random_program(seed, budget);
        let (Ok(unopt), Ok(opt)) = (
            compile(&program, &CompilerOptions::unoptimized()),
            compile(&program, &cse_dce_only()),
        ) else { return Ok(()); };
        let inputs = inputs_for(seed);
        let baseline = run_seeded(&unopt, &inputs, 42);
        let optimized = run_seeded(&opt, &inputs, 42);
        prop_assert_eq!(baseline.len(), optimized.len());
        let same_parameters = unopt.parameters == opt.parameters;
        for (name, expected) in &baseline {
            let actual = &optimized[name];
            for (i, (a, b)) in actual.iter().zip(expected).enumerate() {
                if same_parameters {
                    prop_assert!(a.to_bits() == b.to_bits(),
                        "output {name}[{i}]: {a} != {b} (bitwise)");
                } else {
                    // DCE shrank the modulus chain (see module docs): the
                    // twins run under different primes, so require value
                    // preservation instead of bit-identity.
                    prop_assert!((a - b).abs() < 1e-3 * b.abs().max(1.0),
                        "output {name}[{i}]: {a} vs {b}");
                }
            }
        }
    }
}

/// The acceptance workload, deterministically: on compiled Sobel 16×16 the
/// optimizer strictly reduces node count and key switches, keeps the
/// rotation fan-outs intact for hoisted execution (the chaining gate
/// declines rewrites that would re-pay the shared decomposition per
/// member), and the optimized program still decrypts to the unoptimized
/// twin's outputs within CKKS noise.
#[test]
fn sobel_16x16_is_strictly_reduced_and_value_preserving() {
    let program = eva::apps::image::sobel_program(16);
    let unopt = compile(&program, &CompilerOptions::unoptimized()).unwrap();
    let opt = compile(&program, &CompilerOptions::default()).unwrap();
    let model = CostModel::default();
    let before = estimate_cost(&unopt, &model).unwrap();
    let after = estimate_cost(&opt, &model).unwrap();
    assert!(
        after.nodes < before.nodes,
        "{} !< {}",
        after.nodes,
        before.nodes
    );
    assert!(
        after.distinct_rotation_steps <= before.distinct_rotation_steps,
        "{} !<= {}",
        after.distinct_rotation_steps,
        before.distinct_rotation_steps
    );
    assert!(
        after.key_switches < before.key_switches,
        "{} !< {}",
        after.key_switches,
        before.key_switches
    );
    // The optimizer must leave Sobel's rotation fan-out hoistable: chaining
    // it away would trade one shared decomposition for eight.
    assert!(after.hoisted_groups >= 1, "{:?}", after.hoisted_groups);
    assert!(
        after.hoisted_rotations >= after.rotations / 2,
        "{} hoisted of {} rotations",
        after.hoisted_rotations,
        after.rotations
    );
    assert!(
        after.predicted_us < before.predicted_us,
        "{} !< {}",
        after.predicted_us,
        before.predicted_us
    );

    let image: Vec<f64> = (0..256).map(|i| ((i % 17) as f64) / 17.0).collect();
    let inputs: HashMap<String, Vec<f64>> = [("image".to_string(), image)].into_iter().collect();
    let baseline = run_seeded(&unopt, &inputs, 42);

    // The structural subset (CSE + DCE) is exactly bit-identical on Sobel.
    let structural = compile(&program, &cse_dce_only()).unwrap();
    assert_eq!(structural.parameters, unopt.parameters);
    for (name, expected) in &baseline {
        for (i, (a, b)) in run_seeded(&structural, &inputs, 42)[name]
            .iter()
            .zip(expected)
            .enumerate()
        {
            assert!(
                a.to_bits() == b.to_bits(),
                "{name}[{i}]: {a} != {b} (bitwise)"
            );
        }
    }

    // The full optimizer re-associates rotation sums: value-preserving.
    let optimized = run_seeded(&opt, &inputs, 42);
    for (name, expected) in &baseline {
        for (a, b) in optimized[name].iter().zip(expected) {
            assert!(
                (a - b).abs() < 1e-2 * b.abs().max(1.0),
                "{name}: {a} vs {b}"
            );
        }
    }
}

/// Serial execution with hoisting disabled: every node goes through
/// `execute_node` individually (sequential `Evaluator::rotate` per
/// rotation), with the executor's release discipline. The differential twin
/// for the hoisted executors.
fn run_unhoisted_serial(
    context: &EncryptedContext,
    compiled: &CompiledProgram,
    mut bindings: HashMap<usize, NodeValue>,
) -> HashMap<usize, NodeValue> {
    let program = &compiled.program;
    let live = program.live_mask();
    let uses = program.uses();
    let mut remaining: Vec<usize> = uses
        .iter()
        .map(|u| u.iter().filter(|&&c| live[c]).count())
        .collect();
    for out in program.outputs() {
        remaining[out.node] += 1;
    }
    let mut values: Vec<Option<NodeValue>> = vec![None; program.len()];
    for (id, v) in bindings.drain() {
        values[id] = Some(v);
    }
    for id in program.topological_order() {
        if !live[id] {
            continue;
        }
        match &program.node(id).kind {
            NodeKind::Input { .. } => {}
            NodeKind::Constant { value } => {
                values[id] = Some(NodeValue::Plain(value.to_vector(program.vec_size())));
            }
            NodeKind::Instruction { args, .. } => {
                let arg_refs: Vec<&NodeValue> = args
                    .iter()
                    .map(|&a| values[a].as_ref().expect("parents computed first"))
                    .collect();
                let result = context
                    .execute_node(program, id, &arg_refs)
                    .expect("unhoisted execution");
                values[id] = Some(result);
                let mut distinct = args.clone();
                distinct.sort_unstable();
                distinct.dedup();
                for a in distinct {
                    remaining[a] = remaining[a].saturating_sub(1);
                    if remaining[a] == 0 {
                        values[a] = None;
                    }
                }
            }
        }
    }
    program
        .outputs()
        .iter()
        .filter_map(|o| values[o.node].clone().map(|v| (o.node, v)))
        .collect()
}

/// Asserts two output maps hold bit-identical values (ciphertext
/// polynomials and scales, or plaintext `f64` bits).
fn assert_outputs_bit_identical(
    a: &HashMap<usize, NodeValue>,
    b: &HashMap<usize, NodeValue>,
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "{label}: output count");
    for (node, va) in a {
        match (va, &b[node]) {
            (NodeValue::Cipher(x), NodeValue::Cipher(y)) => {
                assert_eq!(
                    x.polys(),
                    y.polys(),
                    "{label}: ciphertext output {node} diverged"
                );
                assert_eq!(x.scale_log2().to_bits(), y.scale_log2().to_bits());
                assert_eq!(x.level(), y.level());
            }
            (NodeValue::Plain(x), NodeValue::Plain(y)) => {
                assert!(
                    x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()),
                    "{label}: plaintext output {node} diverged"
                );
            }
            _ => panic!("{label}: output {node} changed kind"),
        }
    }
}

/// Runs one workload through the hoisted serial executor, the hoisted
/// parallel executor and the node-at-a-time unhoisted twin, asserting
/// bit-identical ciphertext outputs everywhere — `rotate` and
/// `rotate_hoisted` are built on the same decompose/apply primitives, so
/// hoisting must not move a single bit.
fn assert_hoisting_is_bit_invisible(
    compiled: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
) {
    let report = estimate_cost(compiled, &CostModel::default()).unwrap();
    assert!(
        report.hoisted_groups >= 1,
        "workload exercises no rotation fan-out: {report:?}"
    );
    let mut ctx = EncryptedContext::setup(compiled, Some(42)).unwrap();
    let bindings = ctx.encrypt_inputs(compiled, inputs).unwrap();
    let hoisted = ctx.execute_serial(compiled, bindings.clone()).unwrap();
    let unhoisted = run_unhoisted_serial(&ctx, compiled, bindings.clone());
    assert_outputs_bit_identical(&hoisted, &unhoisted, "serial hoisted vs unhoisted");
    let parallel = execute_parallel(ctx.evaluation(), compiled, bindings, 4).unwrap();
    assert_outputs_bit_identical(&parallel, &unhoisted, "parallel hoisted vs unhoisted");
    // And the outputs decode to something: guard against a trivially-empty
    // comparison.
    let decrypted = ctx.decrypt_outputs(compiled, &hoisted).unwrap();
    assert!(!decrypted.is_empty());
}

/// Sobel 16×16 twins: hoisted (serial and parallel) executions are
/// bit-identical to the unhoisted node-at-a-time execution.
#[test]
fn sobel_hoisted_twins_are_bit_identical() {
    let program = eva::apps::image::sobel_program(16);
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let image: Vec<f64> = (0..256).map(|i| ((i % 17) as f64) / 17.0).collect();
    let inputs: HashMap<String, Vec<f64>> = [("image".to_string(), image)].into_iter().collect();
    assert_hoisting_is_bit_invisible(&compiled, &inputs);
}

/// LeNet-5-small twins: the full DNN workload (hundreds of rotations across
/// many fan-out groups) through the same differential harness.
#[test]
fn lenet_hoisted_twins_are_bit_identical() {
    let network = eva::tensor::networks::lenet5_small(42);
    let lowered = eva::tensor::lower_network(&network, eva::tensor::LoweringMode::Eva);
    let compiled = compile(&lowered.program, &CompilerOptions::default()).unwrap();
    let image: Vec<f64> = (0..lowered.program.vec_size())
        .map(|i| ((i % 23) as f64) / 23.0 - 0.5)
        .collect();
    let inputs: HashMap<String, Vec<f64>> =
        [(lowered.input_name.clone(), image)].into_iter().collect();
    assert_hoisting_is_bit_invisible(&compiled, &inputs);
}
