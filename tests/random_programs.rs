//! Property-based integration test: the compiler's central guarantee.
//!
//! For randomly generated input programs, compilation must either fail with a
//! clean error or produce a program that (a) passes validation — it would
//! never throw inside the FHE library — and (b) preserves the reference
//! semantics (the maintenance instructions do not change values).

use std::collections::HashMap;

use eva::backend::run_reference;
use eva::ir::{compile, CompilerOptions, ModSwitchStrategy, Opcode, Program, RescaleStrategy};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Builds a random DAG program from a seed: a mix of cipher/plain inputs and
/// random arithmetic, rotation and subtraction nodes.
fn random_program(seed: u64, node_budget: usize) -> Program {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vec_size = 16usize;
    let mut program = Program::new(format!("random_{seed}"), vec_size);
    let mut pool = vec![
        program.input_cipher("a", rng.gen_range(20..=35)),
        program.input_cipher("b", rng.gen_range(20..=35)),
        program.input_vector("v", rng.gen_range(10..=20)),
    ];
    for _ in 0..node_budget {
        let lhs = pool[rng.gen_range(0..pool.len())];
        let rhs = pool[rng.gen_range(0..pool.len())];
        let node = match rng.gen_range(0..6) {
            0 => program.instruction(Opcode::Add, &[lhs, rhs]),
            1 => program.instruction(Opcode::Sub, &[lhs, rhs]),
            2 | 3 => program.instruction(Opcode::Multiply, &[lhs, rhs]),
            4 => program.instruction(Opcode::RotateLeft(rng.gen_range(0..8)), &[lhs]),
            _ => program.instruction(Opcode::Negate, &[lhs]),
        };
        pool.push(node);
    }
    // Use the last few nodes as outputs so deep chains are exercised.
    let outputs = pool.len().saturating_sub(2);
    for (i, &node) in pool[outputs..].iter().enumerate() {
        if program.node(node).ty.is_cipher() {
            program.output(format!("out{i}"), node, 30);
        }
    }
    // Guarantee at least one cipher output.
    if program.outputs().is_empty() {
        program.output("fallback", pool[0], 30);
    }
    program
}

fn random_inputs(seed: u64) -> HashMap<String, Vec<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead_beef);
    ["a", "b", "v"]
        .iter()
        .map(|&name| {
            (
                name.to_string(),
                (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compilation_preserves_reference_semantics(seed in any::<u64>(), budget in 3usize..25) {
        let program = random_program(seed, budget);
        let inputs = random_inputs(seed);
        let before = run_reference(&program, &inputs).unwrap();

        for (rescale, mod_switch) in [
            (RescaleStrategy::Waterline, ModSwitchStrategy::Eager),
            (RescaleStrategy::Waterline, ModSwitchStrategy::Lazy),
        ] {
            let options =
                CompilerOptions { rescale, mod_switch, max_rescale_bits: 60, ..Default::default() };
            match compile(&program, &options) {
                Ok(compiled) => {
                    // The transformed program must compute the same values.
                    let after = run_reference(&compiled.program, &inputs).unwrap();
                    for (name, expected) in &before {
                        let actual = &after[name];
                        for (a, b) in actual.iter().zip(expected) {
                            prop_assert!((a - b).abs() < 1e-9,
                                "output {name} changed after transformation: {a} vs {b}");
                        }
                    }
                    // And its parameters must be well-formed.
                    prop_assert!(compiled.parameters.chain_length() >= 2);
                    prop_assert!(compiled.parameters.total_bits() <= 1762);
                }
                Err(err) => {
                    // Two failure modes are acceptable for very deep random
                    // programs: parameter selection (the modulus outgrows every
                    // supported ring degree) and the worst-case noise gate (deep
                    // multiply chains genuinely drown their outputs in noise).
                    // Validation failures would mean the transformation itself
                    // is broken.
                    prop_assert!(
                        matches!(
                            err,
                            eva::ir::EvaError::ParameterSelection(_)
                                | eva::ir::EvaError::NoiseBudget(_)
                        ),
                        "unexpected compilation failure: {err}"
                    );
                }
            }
        }
    }
}
