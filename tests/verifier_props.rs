//! Property-based tests for the standalone IR verifier.
//!
//! Two properties, mirroring the paper's Section 6.2 claim that compiled
//! programs can never throw inside the FHE runtime:
//!
//! 1. **Completeness on good programs** — every program the compiler produces
//!    from a random circuit passes `verify_compiled` with zero errors.
//! 2. **Sensitivity to corruption** — a single mutation of a compiled
//!    program (retargeting an argument, bypassing a relinearize, deepening a
//!    rescale chain past the prime budget, dropping a rotation step from the
//!    Galois-key request) is caught by the matching named check.

use eva::ir::analysis::verifier::{verify_compiled, Check};
use eva::ir::{
    compile, CompiledProgram, CompilerOptions, ModSwitchStrategy, Opcode, Program, RescaleStrategy,
    ValueType,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Same shape as the generator in `random_programs.rs`: a random DAG over
/// cipher/plain inputs with arithmetic, rotations and negation.
fn random_program(seed: u64, node_budget: usize) -> Program {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let vec_size = 16usize;
    let mut program = Program::new(format!("random_{seed}"), vec_size);
    let mut pool = vec![
        program.input_cipher("a", rng.gen_range(20..=35)),
        program.input_cipher("b", rng.gen_range(20..=35)),
        program.input_vector("v", rng.gen_range(10..=20)),
    ];
    for _ in 0..node_budget {
        let lhs = pool[rng.gen_range(0..pool.len())];
        let rhs = pool[rng.gen_range(0..pool.len())];
        let node = match rng.gen_range(0..6) {
            0 => program.instruction(Opcode::Add, &[lhs, rhs]),
            1 => program.instruction(Opcode::Sub, &[lhs, rhs]),
            2 | 3 => program.instruction(Opcode::Multiply, &[lhs, rhs]),
            4 => program.instruction(Opcode::RotateLeft(rng.gen_range(0..8)), &[lhs]),
            _ => program.instruction(Opcode::Negate, &[lhs]),
        };
        pool.push(node);
    }
    let outputs = pool.len().saturating_sub(2);
    for (i, &node) in pool[outputs..].iter().enumerate() {
        if program.node(node).ty.is_cipher() {
            program.output(format!("out{i}"), node, 30);
        }
    }
    if program.outputs().is_empty() {
        program.output("fallback", pool[0], 30);
    }
    program
}

fn compile_random(seed: u64, budget: usize, lazy: bool) -> Option<CompiledProgram> {
    let options = CompilerOptions {
        rescale: RescaleStrategy::Waterline,
        mod_switch: if lazy {
            ModSwitchStrategy::Lazy
        } else {
            ModSwitchStrategy::Eager
        },
        max_rescale_bits: 60,
        ..CompilerOptions::default()
    };
    compile(&random_program(seed, budget), &options).ok()
}

/// The single-mutation corruptions from the issue, each paired with the
/// named check(s) allowed to catch it. Several checks may legitimately fire
/// for one mutation (retargeting an argument breaks the stamped exact scales
/// of every descendant as well as the local scale match), but at least one
/// of the *matching* checks must.
fn mutate(compiled: &mut CompiledProgram, choice: usize, rng: &mut impl Rng) -> Vec<Check> {
    let program = &mut compiled.program;
    match choice {
        // Retarget one argument of a live cipher binary op back at a raw
        // input: scale, chain and exact-scale annotations all diverge.
        0 => {
            let live = program.live_mask();
            if let Some(id) = (0..program.len()).find(|&id| {
                live[id]
                    && matches!(
                        program.opcode(id),
                        Some(Opcode::Add | Opcode::Sub | Opcode::Multiply)
                    )
                    && program
                        .args(id)
                        .iter()
                        .all(|&a| program.node(a).ty.is_cipher())
                    && !program.args(id).contains(&0)
            }) {
                program.replace_arg_at(id, rng.gen_range(0..2), 0);
                vec![
                    Check::ScaleMatch,
                    Check::ChainConformity,
                    Check::ExactScales,
                ]
            } else {
                Vec::new()
            }
        }
        // Bypass a live relinearize: its consumers (or the output wire
        // contract) see a 3-polynomial ciphertext. Dead relinearize nodes are
        // skipped — bypassing one changes nothing observable.
        1 => {
            let live = program.live_mask();
            if let Some(id) = (0..program.len())
                .find(|&id| live[id] && program.opcode(id) == Some(Opcode::Relinearize))
            {
                let operand = program.args(id)[0];
                let users: Vec<usize> = (0..program.len())
                    .filter(|&u| program.args(u).contains(&id))
                    .collect();
                for user in users {
                    program.replace_arg(user, id, operand);
                }
                program.redirect_outputs(id, operand);
                vec![Check::Relinearized, Check::ExactScales, Check::ScaleMatch]
            } else {
                Vec::new()
            }
        }
        // Deepen the rescale chain of an output until it outruns the shipped
        // prime chain.
        2 => {
            for _ in 0..=compiled.parameters.data_primes.len() {
                let out_node = program.outputs()[0].node;
                let extra = program.push_instruction(
                    Opcode::Rescale(30),
                    vec![out_node],
                    ValueType::Cipher,
                );
                program.redirect_outputs(out_node, extra);
            }
            vec![Check::LevelBudget, Check::ExactScales]
        }
        // Drop a rotation step from the Galois-key request.
        _ => {
            if compiled.rotation_steps.is_empty() {
                Vec::new()
            } else {
                let victim = rng.gen_range(0..compiled.rotation_steps.len());
                compiled.rotation_steps.remove(victim);
                vec![Check::RotationKeys]
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // (a) Every compiler-produced program passes the verifier cleanly.
    #[test]
    fn compiled_programs_verify_cleanly(seed in any::<u64>(), budget in 3usize..25, lazy in any::<bool>()) {
        if let Some(compiled) = compile_random(seed, budget, lazy) {
            let report = verify_compiled(&compiled);
            prop_assert!(report.is_clean(), "compiler output failed verification:\n{report}");
        }
    }

    // (b) Single-mutation corruption is caught by the matching named check.
    #[test]
    fn corruption_is_caught_by_the_matching_check(
        seed in any::<u64>(),
        budget in 6usize..25,
        choice in 0usize..4,
    ) {
        let Some(mut compiled) = compile_random(seed, budget, false) else { return Ok(()); };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xc0ffee);
        let expected = mutate(&mut compiled, choice, &mut rng);
        if expected.is_empty() {
            // The mutation did not apply to this program (e.g. no relinearize
            // present); nothing to check.
            return Ok(());
        }
        let report = verify_compiled(&compiled);
        prop_assert!(!report.is_clean(), "mutation {choice} survived verification");
        prop_assert!(
            expected.iter().any(|&check| report.has_error(check)),
            "mutation {choice} caught, but by the wrong check(s):\n{report}"
        );
    }
}

/// The service-layer contract in one deterministic test: a valid program
/// round-trips through `.evaprog` bytes and still verifies; every mutated
/// variant is rejected.
#[test]
fn evaprog_roundtrip_preserves_verifiability() {
    let compiled = compile_random(11, 12, false).expect("seed 11 compiles");
    let bytes = eva::ir::serialize::compiled_to_bytes(&compiled);
    let decoded = eva::ir::serialize::compiled_from_bytes(&bytes).unwrap();
    let report = verify_compiled(&decoded);
    assert!(report.is_clean(), "{report}");
}
