//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the `eva-bench` crate uses —
//! `Criterion`, `benchmark_group` with `measurement_time`/`sample_size`,
//! `bench_function`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — as a simple wall-clock
//! harness: each benchmark is warmed up once, then timed over enough
//! iterations to fill the measurement window, and the mean, min and max
//! per-iteration times are printed. No statistics, plots or HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting a computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing state handed to the closure of `bench_function`.
pub struct Bencher<'a> {
    config: &'a Config,
    name: String,
}

#[derive(Clone, Copy)]
struct Config {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Bencher<'_> {
    /// Times `routine`, printing a one-line summary.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up call (fills caches, faults in code pages).
        black_box(routine());

        let mut samples: Vec<Duration> = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{:<48} time: [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            self.name,
            min,
            mean,
            max,
            samples.len()
        );
    }
}

/// A named collection of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the time window each benchmark may spend measuring.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Sets the number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.config.sample_size = size.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            config: &self.config,
            name: format!("{}/{}", self.name, id.into()),
        };
        f(&mut bencher);
        self
    }

    /// Ends the group (printing nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            config: &self.config,
            name: id.into(),
        };
        f(&mut bencher);
        self
    }

    /// Opens a named group of benchmarks with its own measurement settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            name: name.to_string(),
            config,
            _criterion: self,
        }
    }
}

/// Declares a group function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        Criterion::default().bench_function("noop", |b| b.iter(|| calls += 1));
        // 1 warm-up + at least 1 timed sample.
        assert!(calls >= 2);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut calls = 0u32;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!((2..=4).contains(&calls));
    }
}
