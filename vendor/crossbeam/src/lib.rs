//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`queue::SegQueue`] — an unbounded MPMC queue. The real crate is
//!   lock-free; this version wraps a `Mutex<VecDeque>`, which has the same
//!   semantics and is more than fast enough for a work-stealing scheduler
//!   whose items are multi-millisecond FHE kernels.
//! * [`thread::scope`] — scoped threads with crossbeam's `Result`-returning
//!   signature, layered over `std::thread::scope` (the scope closure receives
//!   a scope handle, and a panic in any spawned thread surfaces as `Err`).

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// An unbounded multi-producer multi-consumer FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an element to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(value);
        }

        /// Removes the element at the front of the queue, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
        }

        /// Returns the number of elements currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SegQueue { .. }")
        }
    }
}

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns. Returns `Err` if any spawned thread (or
    /// the closure itself) panicked, mirroring crossbeam's signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_fifo() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scope_joins_workers() {
        let counter = AtomicUsize::new(0);
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    while q.pop().is_some() {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_reports_panic_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }
}
