//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives that reproduce the parts of the
//! `parking_lot` API this workspace relies on: `lock()`/`read()`/`write()`
//! return guards directly (no poisoning — a panic while holding a lock simply
//! passes the data through via `into_inner`), and `Condvar::wait*` take the
//! guard by `&mut` instead of by value.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual exclusion primitive; `lock` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's wait consumes the guard; parking_lot's borrows it mutably).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait methods reborrow the guard.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during condvar wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during condvar wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock; `read`/`write` never return a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_wait_for() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        assert!(*started);
        handle.join().unwrap();

        // A timed wait on a never-signalled condvar must time out.
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert_eq!(*g, 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
