//! Minimal epoll-backed readiness polling for the eva-service reactor.
//!
//! This is the offline stand-in for the `polling` crate: a [`Poller`] wraps
//! one level-triggered epoll instance and exposes exactly the surface the
//! reactor needs — register/modify/deregister a file descriptor with a
//! `u64` token and read/write interest, then [`Poller::wait`] for readiness
//! events with an optional timeout. All unsafe FFI is contained here so the
//! service crate itself can keep `#![forbid(unsafe_code)]`.
//!
//! The wrapper is Linux-only (epoll *is* Linux-only); the workspace's tier-1
//! environment is Linux, and nothing else links this crate.

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel ABI
/// packs the struct (no padding between the 32-bit mask and the 64-bit
/// data); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (or a peer hang-up made it so: EOF is
    /// reported as readable so the owner observes it with a zero-length
    /// read, exactly like blocking IO would).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The kernel flagged an error or hang-up condition (`EPOLLERR` /
    /// `EPOLLHUP` / `EPOLLRDHUP`). The owner should read/write to surface
    /// the concrete `io::Error`.
    pub closed: bool,
}

/// Read/write interest for one registered descriptor. Level-triggered: the
/// descriptor reports ready on every [`Poller::wait`] until the condition is
/// cleared, so pausing a connection is just registering empty interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read and write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// No interest: the descriptor stays registered (keeping its token) but
    /// delivers only error/hang-up events.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut mask = 0;
        if self.readable {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

// The epoll fd is just an fd; all operations are kernel-synchronized.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Updates the interest (and token) of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, appending into `events` (cleared first). With a
    /// timeout of `None` the wait is unbounded. Returns the number of events
    /// delivered; a timer expiry or an interrupting signal delivers zero
    /// events rather than an error, so callers just re-evaluate their timers
    /// and loop.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            // Round up: a 0.3 ms timer must not become a busy-looping 0 ms
            // epoll_wait.
            Some(t) => {
                let ms = t.as_millis() + u128::from(t.subsec_nanos() % 1_000_000 != 0);
                ms.min(c_int::MAX as u128) as c_int
            }
            None => -1,
        };
        const CAPACITY: usize = 64;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for raw_event in raw.iter().take(n as usize) {
            let mask = raw_event.events;
            events.push(Event {
                token: raw_event.data,
                readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: mask & EPOLLOUT != 0,
                closed: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn readiness_is_level_triggered_and_tokened() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.add(a.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing to read yet: the wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        b.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].writable);

        // Level-triggered: the byte is still there, so it reports again...
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        // ...until consumed.
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 1);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn interest_can_be_paused_and_modified() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.add(a.as_raw_fd(), 1, Interest::NONE).unwrap();
        b.write_all(b"y").unwrap();

        let mut events = Vec::new();
        // Paused: data is pending but no interest is registered.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        // Resume read interest (with a new token) and the event arrives.
        poller.modify(a.as_raw_fd(), 2, Interest::READ).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 2);
        poller.delete(a.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn hangup_reports_as_readable_and_closed() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.add(a.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(b);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable, "EOF must surface as a readable event");
        assert!(events[0].closed);
    }

    #[test]
    fn timeouts_round_up_not_down() {
        let poller = Poller::new().unwrap();
        let started = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_micros(1500)))
            .unwrap();
        // 1.5 ms rounds up to 2 ms, never down to a 1 ms (or 0 ms) spin.
        assert!(started.elapsed() >= Duration::from_micros(1500));
    }
}
