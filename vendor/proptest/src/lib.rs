//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`Strategy`] trait with `prop_map`, [`any`], range strategies,
//! `prop::sample::select`, `prop::collection::vec`, [`ProptestConfig`] and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros — over the vendored
//! `rand` crate.
//!
//! Differences from real proptest, deliberately accepted for an offline test
//! harness:
//!
//! * **No shrinking.** A failing case reports the RNG seed that produced it
//!   (re-runnable via the `PROPTEST_SEED` environment variable) instead of a
//!   minimized input.
//! * **Deterministic by default.** Case seeds derive from the test name and
//!   case index, so CI runs are reproducible; set `PROPTEST_SEED` to explore
//!   a different region of the input space.
//! * **Bounded by default.** `ProptestConfig::default()` runs 32 cases
//!   (overridable via `PROPTEST_CASES`), keeping the tier-1 suite fast.

use std::fmt;

pub use rand;

/// The RNG type handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// How a random input of type `Value` is produced.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Random::random(rng)
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategies for picking from explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }
    }

    /// Uniformly selects one of the given values. Panics on an empty list.
    pub fn select<T: Clone + std::fmt::Debug>(choices: Vec<T>) -> Select<T> {
        assert!(
            !choices.is_empty(),
            "sample::select requires at least one choice"
        );
        Select { choices }
    }
}

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }

    /// A vector of exactly `count` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        Self { cases }
    }
}

/// Error produced by a failing `prop_assert!`; carries the rendered message.
pub struct TestCaseError(pub String);

impl<T: fmt::Display> From<T> for TestCaseError {
    fn from(msg: T) -> Self {
        Self(msg.to_string())
    }
}

/// Drives one property: runs `config.cases` cases with per-case deterministic
/// seeds derived from `name` (or `PROPTEST_SEED`), panicking with the seed of
/// the first failing case.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    let base = match std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(seed) => seed,
        None => fnv1a(name.as_bytes()),
    };
    for index in 0..config.cases {
        let seed = base.wrapping_add(u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            panic!(
                "property '{name}' failed at case {index} (seed {seed}; \
                 re-run with PROPTEST_SEED={base}): {msg}"
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        #[test]
        fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            $crate::run_property(&config, stringify!($name), |__proptest_rng| {
                $( let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng); )+
                let __proptest_outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __proptest_outcome
            });
        }
    )*};
}

/// Fails the current case (with an optional formatted message) unless `cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::from(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::from(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::from(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::TestCaseError::from(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// The glob-imported namespace: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Module-style access to strategy constructors (`prop::sample::select`,
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u64..20, y in -1i8..=1, f in -2.0f64..2.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1..=1).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn map_and_select_compose(
            q in prop::sample::select(vec![3u64, 257, 65537]).prop_map(|v| v + 1),
            xs in prop::collection::vec(0u32..5, 4),
        ) {
            prop_assert!(q == 4 || q == 258 || q == 65538);
            prop_assert_eq!(xs.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(_x in any::<u64>()) {
            // Body runs; case count is verified by the runner not hanging.
            prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "property 'failing' failed")]
    fn failure_reports_seed() {
        crate::run_property(&ProptestConfig::with_cases(5), "failing", |_| {
            Err(crate::TestCaseError::from("always fails"))
        });
    }
}
