//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of `rand` APIs the sources use are reimplemented here: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256**
//! seeded through SplitMix64), [`rngs::ChaCha20Rng`] (an RFC 8439 ChaCha20
//! keystream generator) and [`thread_rng`].
//!
//! Two tiers of generator:
//!
//! * [`rngs::StdRng`] — xoshiro256**: fast, deterministic from a 64-bit seed;
//!   used for tests, benchmarks and reproducible fixtures. **Not**
//!   cryptographically secure.
//! * [`rngs::ChaCha20Rng`] — the key-generation and encryption-randomness
//!   path: a ChaCha20 block function (verified against the RFC 8439 test
//!   vector) keyed from `/dev/urandom` by
//!   [`rngs::ChaCha20Rng::from_os_entropy`]. This is a CSPRNG *stand-in*:
//!   the construction is sound, but swap in the audited `rand`/`getrandom`
//!   crates before relying on it for production keys.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an `RngCore`.
pub trait Random: Sized {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value in the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws an exactly-uniform value in `[0, span)` using Lemire's widening
/// multiply with rejection. The rejection branch matters here: the workspace
/// samples 40–60-bit prime moduli, where multiply-without-rejection has point
/// probabilities differing by several percent.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = rng.next_u64() as u128 * span as u128;
    if (m as u64) < span {
        // threshold = 2^64 mod span; low products below it are the over-
        // represented region and must be rejected for exact uniformity.
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = rng.next_u64() as u128 * span as u128;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::random(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random number generation methods, available on every
/// [`RngCore`] implementor.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Returns a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy (here: clock + ASLR).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    // Mix in a stack address so two calls in the same nanosecond differ.
    let marker = 0u8;
    let aslr = &marker as *const u8 as u64;
    nanos.rotate_left(32) ^ aslr ^ std::process::id() as u64
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A freshly-entropy-seeded generator, returned by [`crate::thread_rng`].
    pub type ThreadRng = StdRng;

    /// The ChaCha20 quarter round (RFC 8439 Section 2.1).
    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// The ChaCha20 block function (RFC 8439 Section 2.3): 10 double rounds
    /// over the 4x4 state, then the feed-forward addition.
    pub(super) fn chacha20_block(key: &[u32; 8], counter: u32, nonce: &[u32; 3]) -> [u32; 16] {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter,
            nonce[0],
            nonce[1],
            nonce[2],
        ];
        let initial = state;
        for _ in 0..10 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &init) in state.iter_mut().zip(&initial) {
            *word = word.wrapping_add(init);
        }
        state
    }

    /// A ChaCha20 keystream generator (RFC 8439 layout: 256-bit key, 32-bit
    /// block counter, 96-bit nonce), the workspace's cryptographically strong
    /// generator for key generation and encryption randomness.
    ///
    /// Seed it from OS entropy with [`ChaCha20Rng::from_os_entropy`] (reads
    /// `/dev/urandom`); `seed_from_u64` exists for deterministic tests of the
    /// generator itself and inherits only 64 bits of entropy.
    #[derive(Debug, Clone)]
    pub struct ChaCha20Rng {
        key: [u32; 8],
        counter: u32,
        nonce: [u32; 3],
        /// Current keystream block as eight little-endian `u64` words.
        buf: [u64; 8],
        /// Next unread word of `buf`; 8 means exhausted.
        idx: usize,
    }

    impl ChaCha20Rng {
        /// Builds the generator from a full 256-bit key.
        pub fn from_key_bytes(key_bytes: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (word, chunk) in key.iter_mut().zip(key_bytes.chunks_exact(4)) {
                *word = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            Self {
                key,
                counter: 0,
                nonce: [0; 3],
                buf: [0; 8],
                idx: 8,
            }
        }

        /// Builds the generator from 32 bytes of OS entropy
        /// (`/dev/urandom`), falling back to the clock/ASLR mix only if the
        /// device cannot be read.
        pub fn from_os_entropy() -> Self {
            let mut key_bytes = [0u8; 32];
            let filled = std::fs::File::open("/dev/urandom")
                .and_then(|mut f| {
                    use std::io::Read;
                    f.read_exact(&mut key_bytes)
                })
                .is_ok();
            if !filled {
                // Degraded fallback: expand the ambient-entropy seed.
                let mut sm = super::entropy_seed();
                for chunk in key_bytes.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
                }
            }
            Self::from_key_bytes(key_bytes)
        }

        fn refill(&mut self) {
            let block = chacha20_block(&self.key, self.counter, &self.nonce);
            self.counter = match self.counter.checked_add(1) {
                Some(next) => next,
                None => {
                    // 256 GiB of keystream consumed: move to the next nonce.
                    self.nonce[0] = self.nonce[0].wrapping_add(1);
                    0
                }
            };
            for (word, pair) in self.buf.iter_mut().zip(block.chunks_exact(2)) {
                *word = (pair[0] as u64) | ((pair[1] as u64) << 32);
            }
            self.idx = 0;
        }
    }

    impl SeedableRng for ChaCha20Rng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut key_bytes = [0u8; 32];
            for chunk in key_bytes.chunks_exact_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
            }
            Self::from_key_bytes(key_bytes)
        }

        fn from_entropy() -> Self {
            Self::from_os_entropy()
        }
    }

    impl RngCore for ChaCha20Rng {
        fn next_u64(&mut self) -> u64 {
            if self.idx >= 8 {
                self.refill();
            }
            let word = self.buf[self.idx];
            self.idx += 1;
            word
        }
    }
}

/// Returns a generator seeded from ambient entropy.
///
/// Unlike the real `rand`, this returns a fresh owned generator per call
/// rather than a thread-local handle; all call sites in this workspace use it
/// as a throwaway temporary.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-1i8..=1);
            assert!((-1..=1).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn small_range_is_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((9_400..=10_600).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not panic or loop.
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u64 = rng.gen_range(1..u64::MAX);
    }

    #[test]
    fn unsized_rng_usable_through_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            let x: u64 = rng.gen();
            x ^ rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
    }

    #[test]
    fn chacha20_block_matches_rfc_8439_vector() {
        // RFC 8439 Section 2.3.2: key 00..1f, counter 1, nonce
        // 000000090000004a00000000.
        let mut key = [0u32; 8];
        let key_bytes: Vec<u8> = (0u8..32).collect();
        for (word, chunk) in key.iter_mut().zip(key_bytes.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let nonce = [0x0900_0000u32, 0x4a00_0000, 0x0000_0000];
        let out = rngs::chacha20_block(&key, 1, &nonce);
        let expected: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn chacha20_rng_is_deterministic_from_key_and_distinct_across_keys() {
        let mut a = rngs::ChaCha20Rng::from_key_bytes([7u8; 32]);
        let mut b = rngs::ChaCha20Rng::from_key_bytes([7u8; 32]);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::ChaCha20Rng::from_key_bytes([8u8; 32]);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "independent keystreams should not collide");
    }

    #[test]
    fn chacha20_os_entropy_draws_differ() {
        let mut a = rngs::ChaCha20Rng::from_os_entropy();
        let mut b = rngs::ChaCha20Rng::from_os_entropy();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "two entropy-keyed generators should diverge");
    }

    #[test]
    fn chacha20_range_sampling_works() {
        let mut rng = rngs::ChaCha20Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..97);
            assert!(v < 97);
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
