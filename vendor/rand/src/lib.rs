//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of `rand` APIs the sources use are reimplemented here: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256**
//! seeded through SplitMix64) and [`thread_rng`]. The statistical quality is
//! more than sufficient for tests and benchmarks; this is NOT a
//! cryptographically secure generator and must be replaced by the real crate
//! (or a CSPRNG) before any security claim is made about key generation.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an `RngCore`.
pub trait Random: Sized {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value in the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws an exactly-uniform value in `[0, span)` using Lemire's widening
/// multiply with rejection. The rejection branch matters here: the workspace
/// samples 40–60-bit prime moduli, where multiply-without-rejection has point
/// probabilities differing by several percent.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = rng.next_u64() as u128 * span as u128;
    if (m as u64) < span {
        // threshold = 2^64 mod span; low products below it are the over-
        // represented region and must be rejected for exact uniformity.
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = rng.next_u64() as u128 * span as u128;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::random(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random number generation methods, available on every
/// [`RngCore`] implementor.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Returns a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy (here: clock + ASLR).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    // Mix in a stack address so two calls in the same nanosecond differ.
    let marker = 0u8;
    let aslr = &marker as *const u8 as u64;
    nanos.rotate_left(32) ^ aslr ^ std::process::id() as u64
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A freshly-entropy-seeded generator, returned by [`crate::thread_rng`].
    pub type ThreadRng = StdRng;
}

/// Returns a generator seeded from ambient entropy.
///
/// Unlike the real `rand`, this returns a fresh owned generator per call
/// rather than a thread-local handle; all call sites in this workspace use it
/// as a throwaway temporary.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-1i8..=1);
            assert!((-1..=1).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn small_range_is_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((9_400..=10_600).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not panic or loop.
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u64 = rng.gen_range(1..u64::MAX);
    }

    #[test]
    fn unsized_rng_usable_through_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            let x: u64 = rng.gen();
            x ^ rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
