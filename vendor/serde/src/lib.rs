//! Offline stand-in for `serde`.
//!
//! The workspace annotates IR types with `#[derive(Serialize, Deserialize)]`
//! so they are ready for the real `serde` once the build environment has
//! crates.io access, but the actual wire format used today is the hand-rolled
//! EVA binary codec in `eva-core::serialize`. These derive macros therefore
//! expand to nothing: the attribute stays valid, no trait impls are emitted,
//! and nothing in the workspace calls serde trait methods.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
